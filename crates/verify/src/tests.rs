use crate::{verify, verify_quotiented, VerifyInput};
use mdd_protocol::PatternSpec;
use mdd_routing::{Scheme, SchemeRouting, VcMap};
use mdd_topology::{Topology, TopologyKind};

const SA: Scheme = Scheme::StrictAvoidance {
    shared_adaptive: false,
};

struct Fixture {
    topo: Topology,
    routing: SchemeRouting,
    pattern: PatternSpec,
    scheme: Scheme,
}

impl Fixture {
    fn torus(radix: &[u32], scheme: Scheme, pattern: PatternSpec, vcs: u8) -> Self {
        let topo = Topology::new(TopologyKind::Torus, radix, 1);
        let map = VcMap::build_degraded(scheme, pattern.protocol(), vcs, 2);
        Fixture {
            topo,
            routing: SchemeRouting::new(map),
            pattern,
            scheme,
        }
    }

    fn mesh(radix: &[u32], scheme: Scheme, pattern: PatternSpec, vcs: u8) -> Self {
        let topo = Topology::new(TopologyKind::Mesh, radix, 1);
        let map = VcMap::build_degraded(scheme, pattern.protocol(), vcs, 1);
        Fixture {
            topo,
            routing: SchemeRouting::new(map),
            pattern,
            scheme,
        }
    }

    fn base(&self) -> crate::BaseAnalysis {
        crate::BaseAnalysis::analyze(crate::AnalysisConfig::new(
            self.topo.clone(),
            self.scheme,
            self.routing.clone(),
            self.pattern.clone(),
            self.scheme.default_queue_org(),
        ))
    }

    fn input(&self) -> VerifyInput<'_> {
        VerifyInput {
            topo: &self.topo,
            scheme: self.scheme,
            routing: &self.routing,
            pattern: &self.pattern,
            queue_org: self.scheme.default_queue_org(),
        }
    }
}

#[test]
fn sa_with_full_partitions_is_proven_free() {
    let fx = Fixture::torus(&[4, 4], SA, PatternSpec::pat271(), 8);
    let v = verify(&fx.input());
    assert!(v.is_proven_free(), "got {v}");
    assert!(v.witness().is_none());
}

#[test]
fn sa_two_type_protocol_is_proven_free() {
    let fx = Fixture::torus(&[4, 4], SA, PatternSpec::pat100(), 4);
    assert!(verify(&fx.input()).is_proven_free());
}

#[test]
fn sa_paper_torus_is_proven_free() {
    // The paper's 8x8 configuration; also the speed target (< 100 ms).
    let fx = Fixture::torus(&[8, 8], SA, PatternSpec::pat271(), 8);
    let t0 = std::time::Instant::now();
    let v = verify(&fx.input());
    assert!(v.is_proven_free(), "got {v}");
    assert!(
        t0.elapsed() < std::time::Duration::from_millis(100),
        "verification took {:?}",
        t0.elapsed()
    );
}

#[test]
fn sa_with_one_vc_short_is_unsafe_with_witness() {
    // 7 VCs cannot hold 4 partitions x 2 dateline classes: the degraded
    // map truncates one escape set, losing the torus dateline break.
    let fx = Fixture::torus(&[4, 4], SA, PatternSpec::pat271(), 7);
    let v = verify(&fx.input());
    assert!(v.is_unsafe(), "got {v}");
    let w = v.witness().expect("unsafe carries a witness");
    assert!(!w.vertices.is_empty());
    assert!(
        w.rendered.contains("router") && w.rendered.contains("vc"),
        "unexpected witness rendering:\n{}",
        w.rendered
    );
}

#[test]
fn sa_with_merged_partitions_is_unsafe() {
    // 4 VCs force the degraded map to merge `≺`-ordered types into
    // shared partitions: a message-dependent cycle, not just a routing one.
    let fx = Fixture::torus(&[4, 4], SA, PatternSpec::pat271(), 4);
    assert!(verify(&fx.input()).is_unsafe());
}

#[test]
fn dr_forwarding_protocol_has_recoverable_cycles() {
    // Request-network cycles through forwarded requests remain, but every
    // blocked request head is convertible into a backoff reply.
    let fx = Fixture::torus(&[4, 4], Scheme::DeflectiveRecovery, PatternSpec::pat271(), 4);
    let v = verify(&fx.input());
    assert_eq!(v.name(), "RecoverableCycles", "got {v}");
    assert!(v.witness().is_some());
}

#[test]
fn dr_preallocated_two_type_protocol_is_proven_free() {
    // With reply preallocation and no forwarding, the 1-0-0 protocol's
    // extended CDG has no cycle at all under DR's two-network split.
    let fx = Fixture::torus(&[4, 4], Scheme::DeflectiveRecovery, PatternSpec::pat100(), 4);
    assert!(verify(&fx.input()).is_proven_free());
}

#[test]
fn pr_relies_on_token_recovery() {
    // True fully adaptive routing cycles on a torus by design; the
    // recovery ring tours every router and NIC, so cycles are drainable.
    let fx = Fixture::torus(&[4, 4], Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4);
    let v = verify(&fx.input());
    assert_eq!(v.name(), "RecoverableCycles", "got {v}");
}

#[test]
fn witness_renders_the_shared_trace_format() {
    let fx = Fixture::torus(&[4, 4], SA, PatternSpec::pat271(), 4);
    let v = verify(&fx.input());
    let w = v.witness().expect("unsafe carries a witness");
    assert!(w.rendered.contains("(cycle closes)"));
    assert_eq!(w.rendered, w.to_string());
    for line in w.rendered.lines().skip(1).take(w.vertices.len() - 1) {
        assert!(line.trim_start().starts_with("->"), "bad line: {line}");
    }
}

#[test]
fn verify_agreement_quotient_matches_full_enumeration() {
    // The orbit quotient must agree with exhaustive enumeration wherever
    // the latter is affordable: every scheme at 8×8 and 16×16. (8×8 is
    // the identity quotient; 16×16 folds to 8×8 and is the first size
    // where the quotient actually discards states.)
    let cases: &[(Scheme, u8)] = &[
        (SA, 8),
        (SA, 7),
        (Scheme::DeflectiveRecovery, 8),
        (Scheme::ProgressiveRecovery, 4),
    ];
    for radix in [&[8u32, 8][..], &[16, 16][..]] {
        for &(scheme, vcs) in cases {
            let fx = Fixture::torus(radix, scheme, PatternSpec::pat271(), vcs);
            let full = verify(&fx.input());
            let quot = verify_quotiented(&fx.input());
            assert_eq!(
                quot.name(),
                full.name(),
                "quotient disagrees with full enumeration: {radix:?} {scheme:?} vcs={vcs}"
            );
        }
    }
}

#[test]
fn quotiented_verifier_classifies_64x64_fast() {
    // The scale-ladder acceptance bar: SA/DR/PR verdicts on a 64×64
    // torus in under a second total, via the orbit quotient. The folded
    // representative is 8×8, so each classification is milliseconds; the
    // only O(N) work left is progressive recovery's ring-coverage tour.
    let t0 = std::time::Instant::now();
    let fx = Fixture::torus(&[64, 64], SA, PatternSpec::pat271(), 8);
    assert!(verify_quotiented(&fx.input()).is_proven_free());
    let fx = Fixture::torus(&[64, 64], Scheme::DeflectiveRecovery, PatternSpec::pat271(), 8);
    assert_eq!(verify_quotiented(&fx.input()).name(), "RecoverableCycles");
    let fx = Fixture::torus(&[64, 64], Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4);
    assert_eq!(verify_quotiented(&fx.input()).name(), "RecoverableCycles");
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(1),
        "64×64 ladder verification took {:?}",
        t0.elapsed()
    );
}

#[test]
fn quotiented_verifier_handles_3d_and_odd_radices() {
    // 8×8×8 folds to itself (radix ≤ 9 is kept verbatim) and must still
    // classify; an odd oversized radix folds to 9, keeping tie-freedom.
    let fx = Fixture::torus(&[8, 8, 8], SA, PatternSpec::pat271(), 8);
    assert!(verify_quotiented(&fx.input()).is_proven_free());
    let fx = Fixture::torus(&[15, 15], SA, PatternSpec::pat271(), 8);
    let v = verify_quotiented(&fx.input());
    assert_eq!(v.name(), verify(&fx.input()).name());
}

#[test]
fn verdict_accessors_are_consistent() {
    let fx = Fixture::torus(&[4, 4], SA, PatternSpec::pat100(), 4);
    let free = verify(&fx.input());
    assert_eq!(free.name(), "ProvenFree");
    assert!(!free.is_unsafe());

    let fx = Fixture::torus(&[4, 4], SA, PatternSpec::pat271(), 4);
    let bad = verify(&fx.input());
    assert_eq!(bad.name(), "Unsafe");
    assert!(!bad.is_proven_free());
}

#[test]
#[ignore]
fn timing_full_16x16() {
    for (scheme, vcs) in [(Scheme::StrictAvoidance { shared_adaptive: false }, 8), (Scheme::DeflectiveRecovery, 8), (Scheme::ProgressiveRecovery, 4)] {
        let fx = Fixture::torus(&[16, 16], scheme, PatternSpec::pat271(), vcs);
        let t0 = std::time::Instant::now();
        let v = verify(&fx.input());
        println!("{scheme:?} vcs{vcs} 16x16 full: {:?} -> {}", t0.elapsed(), v.name());
        let t0 = std::time::Instant::now();
        let v = verify(&fx.input());
        println!("{scheme:?} vcs{vcs} 16x16 full(2): {:?} -> {}", t0.elapsed(), v.name());
    }
}

#[test]
#[ignore]
fn orbit_invariance_experiment() {
    use crate::{fault_orbit_key, AnalysisConfig, BaseAnalysis};
    use mdd_topology::single_link_faults;
    for (scheme, vcs) in [
        (Scheme::StrictAvoidance { shared_adaptive: false }, 8),
        (Scheme::StrictAvoidance { shared_adaptive: false }, 7),
        (Scheme::DeflectiveRecovery, 8),
        (Scheme::DeflectiveRecovery, 4),
        (Scheme::ProgressiveRecovery, 4),
    ] {
        let fx = Fixture::torus(&[8, 8], scheme, PatternSpec::pat271(), vcs);
        let base = BaseAnalysis::analyze(AnalysisConfig::new(
            fx.topo.clone(),
            scheme,
            fx.routing.clone(),
            PatternSpec::pat271(),
            fx.input().queue_org,
        ));
        let t0 = std::time::Instant::now();
        let mut by_dim: std::collections::BTreeMap<String, Vec<(String, &'static str)>> =
            Default::default();
        for f in single_link_faults(&fx.topo) {
            let v = base.reverify(&f);
            let key = fault_orbit_key(&fx.topo, &f);
            by_dim.entry(key).or_default().push((f.label(), v.name()));
        }
        println!(
            "{scheme:?} vcs{vcs} 8x8 base={} elapsed={:?}",
            base.base_verdict().name(),
            t0.elapsed()
        );
        for (key, vs) in &by_dim {
            let names: std::collections::BTreeSet<_> = vs.iter().map(|(_, n)| *n).collect();
            println!("  orbit {key}: {} faults, verdicts {names:?}", vs.len());
            if names.len() > 1 {
                for (l, n) in vs {
                    println!("    {l}: {n}");
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fault-aware incremental analysis
// ---------------------------------------------------------------------------

#[test]
fn reverify_matches_from_scratch_on_torus_faults() {
    // Every reverify below runs the debug cross-check against the
    // from-scratch degraded build internally; this test exercises it
    // across schemes and fault shapes.
    use mdd_topology::{Direction, FaultSet};
    for (scheme, vcs) in [(SA, 8), (Scheme::DeflectiveRecovery, 4), (Scheme::ProgressiveRecovery, 4)]
    {
        let fx = Fixture::torus(&[4, 4], scheme, PatternSpec::pat271(), vcs);
        let base = fx.base();
        // Single link, double link, router fault.
        let mut single = FaultSet::new(&fx.topo);
        single.fail_link(&fx.topo, mdd_topology::NodeId(5), 0, Direction::Plus);
        let mut double = single.clone();
        double.fail_link(&fx.topo, mdd_topology::NodeId(10), 1, Direction::Minus);
        let mut router = FaultSet::new(&fx.topo);
        router.fail_router(&fx.topo, mdd_topology::NodeId(7));
        for f in [&single, &double, &router] {
            let v = base.reverify(f);
            assert_eq!(v.name(), crate::verify_faulted(&fx.input(), f).name());
        }
        // Empty fault set returns the base verdict verbatim.
        let empty = FaultSet::new(&fx.topo);
        assert_eq!(base.reverify(&empty), *base.base_verdict());
    }
}

#[test]
fn incremental_reuse_bumps_counter() {
    // Only an odd-radix torus has destinations toward which a failed
    // link is minimally unproductive in *both* directions (wrap ties):
    // column x=3 of a 5x5 torus for a link at x=0. Meshes and even-radix
    // tori have no such destinations, so their link faults rebuild
    // everything (the documented graceful degradation).
    use mdd_obs::{counters_snapshot, CounterId};
    use mdd_topology::{Direction, FaultSet, NodeId};
    mdd_obs::install(0);
    let fx = Fixture::torus(&[5, 5], SA, PatternSpec::pat100(), 4);
    let base = fx.base();
    let mut f = FaultSet::new(&fx.topo);
    f.fail_link(&fx.topo, NodeId(0), 0, Direction::Plus);
    let before = counters_snapshot().get(CounterId::AnalyzeIncrementalHits);
    let _ = base.reverify(&f);
    let after = counters_snapshot().get(CounterId::AnalyzeIncrementalHits);
    assert!(
        after > before + 1,
        "expected packet-segment reuse beyond the endpoint segment ({before} -> {after})"
    );
    mdd_obs::uninstall();
}

#[test]
fn isolated_router_strands_all_schemes() {
    // Cut both links of a 2x2 mesh corner: traffic to that endpoint is
    // undeliverable, which is Unsafe under every scheme (no drain
    // mechanism can conjure a live route).
    use mdd_topology::{Direction, FaultSet, NodeId};
    for (scheme, vcs) in [(SA, 8), (Scheme::DeflectiveRecovery, 4), (Scheme::ProgressiveRecovery, 4)]
    {
        let fx = Fixture::mesh(&[2, 2], scheme, PatternSpec::pat100(), vcs);
        let base = fx.base();
        let mut f = FaultSet::new(&fx.topo);
        f.fail_link(&fx.topo, NodeId(0), 0, Direction::Plus);
        f.fail_link(&fx.topo, NodeId(0), 1, Direction::Plus);
        let v = base.reverify(&f);
        assert!(v.is_unsafe(), "{scheme:?}: stranded endpoint must be Unsafe, got {v}");
        let w = v.witness().expect("strand verdict carries a witness");
        assert!(w.rendered.contains("stranded"), "witness: {}", w.rendered);
    }
}

#[test]
fn quotient_mesh_fallback_agrees_with_full_enumeration() {
    // Satellite: non-torus input must take the full-enumeration route in
    // verify_quotiented and agree with verify() exactly — even at sizes
    // where a torus would have been folded.
    for radix in [[4u32, 4], [12, 4]] {
        for (scheme, vcs) in [(SA, 8), (Scheme::DeflectiveRecovery, 4)] {
            let fx = Fixture::mesh(&radix, scheme, PatternSpec::pat271(), vcs);
            let quotiented = verify_quotiented(&fx.input());
            let full = verify(&fx.input());
            assert_eq!(quotiented.name(), full.name(), "{scheme:?} mesh {radix:?}");
            assert_eq!(
                quotiented.witness().map(|w| &w.rendered),
                full.witness().map(|w| &w.rendered),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Fault frontier
// ---------------------------------------------------------------------------

#[test]
fn sa_frontier_finds_degrading_faults() {
    use mdd_topology::single_link_faults;
    let fx = Fixture::torus(&[4, 4], SA, PatternSpec::pat271(), 8);
    let base = fx.base();
    assert!(base.base_verdict().is_proven_free());
    let report = crate::classify_fault_points(&base, single_link_faults(&fx.topo));
    assert_eq!(report.points.len(), 32);
    assert_eq!(report.base_verdict, "ProvenFree");
    assert!(
        report.degrading >= 1,
        "crippling a ProvenFree SA config must degrade somewhere"
    );
    assert_eq!(report.preserving + report.degrading, report.points.len());
    let json = report.to_json();
    assert!(json.contains("\"points\""), "json: {json}");
}

#[test]
fn pr_frontier_ring_faults_are_position_dependent() {
    // PR's recovery-lane check is the one *position-dependent* mechanism
    // check: wrap-around links sit off the boustrophedon snake and keep
    // the lane walkable, while in-row links break it. The orbit
    // memoization must therefore split on ring liveness — this is what
    // the debug cross-check in FrontierReport::assemble enforces.
    use mdd_topology::single_link_faults;
    let fx = Fixture::torus(&[4, 4], Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4);
    let base = fx.base();
    let report = crate::classify_fault_points(&base, single_link_faults(&fx.topo));
    assert!(report.degrading >= 1);
    assert!(
        report.preserving >= 1,
        "off-snake wrap links must preserve PR's verdict"
    );
}

#[test]
fn double_link_sampling_is_deterministic_and_classifiable() {
    let fx = Fixture::torus(&[4, 4], SA, PatternSpec::pat271(), 8);
    let base = fx.base();
    let a = crate::sampled_double_link_faults(&fx.topo, 5, 42);
    let b = crate::sampled_double_link_faults(&fx.topo, 5, 42);
    assert_eq!(a.len(), 5);
    assert_eq!(
        a.iter().map(mdd_topology::FaultSet::label).collect::<Vec<_>>(),
        b.iter().map(mdd_topology::FaultSet::label).collect::<Vec<_>>(),
    );
    assert!(a.iter().all(|f| f.num_failed_links() == 2));
    let report = crate::classify_fault_points(&base, a);
    assert_eq!(report.points.len(), 5);
}

// ---------------------------------------------------------------------------
// Minimal-VC synthesis
// ---------------------------------------------------------------------------

#[test]
fn min_safe_vcs_finds_sa_partition_boundary() {
    // SA with pat271 needs one 2-VC escape partition per message type:
    // 8 VCs exactly. The probes at 7 and below are Unsafe.
    let fx = Fixture::torus(&[4, 4], SA, PatternSpec::pat271(), 8);
    let org = SA.default_queue_org();
    let report = crate::min_safe_vcs(&fx.topo, SA, &fx.pattern, org, 8);
    assert_eq!(report.min_vcs, Some(8), "probes: {:?}", report.probes);
    // Exhaustively confirm against a linear scan.
    for vcs in 1..8u8 {
        let probe = crate::min_safe_vcs(&fx.topo, SA, &fx.pattern, org, vcs);
        assert_eq!(probe.min_vcs, None, "vcs {vcs} should be unsafe");
    }
}

#[test]
fn min_safe_vcs_schemes_are_cheaper_than_sa() {
    let fx = Fixture::torus(&[4, 4], SA, PatternSpec::pat271(), 8);
    let sa = crate::min_safe_vcs(&fx.topo, SA, &fx.pattern, SA.default_queue_org(), 8);
    let dr = crate::min_safe_vcs(
        &fx.topo,
        Scheme::DeflectiveRecovery,
        &fx.pattern,
        Scheme::DeflectiveRecovery.default_queue_org(),
        8,
    );
    let pr = crate::min_safe_vcs(
        &fx.topo,
        Scheme::ProgressiveRecovery,
        &fx.pattern,
        Scheme::ProgressiveRecovery.default_queue_org(),
        8,
    );
    let (sa_min, dr_min, pr_min) = (sa.min_vcs.unwrap(), dr.min_vcs.unwrap(), pr.min_vcs.unwrap());
    assert!(dr_min <= sa_min, "DR {dr_min} vs SA {sa_min}");
    assert!(pr_min <= sa_min, "PR {pr_min} vs SA {sa_min}");
}

#[test]
#[ignore]
fn fault_experiment_4x4() {
    use mdd_topology::single_link_faults;
    for (scheme, vcs) in [(SA, 8u8), (Scheme::DeflectiveRecovery, 4), (Scheme::ProgressiveRecovery, 4)] {
        let fx = Fixture::torus(&[4, 4], scheme, PatternSpec::pat271(), vcs);
        let base = fx.base();
        println!("== {scheme:?} base {}", base.base_verdict().name());
        for f in single_link_faults(&fx.topo) {
            let v = crate::verify_faulted(&fx.input(), &f);
            let key = crate::fault_orbit_key(&fx.topo, &f);
            println!("  {:14} {:20} orbit {}", f.label(), v.name(), key);
        }
    }
}

#[test]
#[ignore]
fn timing_outcomes_16x16() {
    use mdd_topology::{Direction, FaultSet, NodeId};
    use std::time::Instant;
    for (scheme, vcs) in [(SA, 8u8), (Scheme::DeflectiveRecovery, 8), (Scheme::ProgressiveRecovery, 4)] {
        let fx = Fixture::torus(&[16, 16], scheme, PatternSpec::pat271(), vcs);
        let t0 = Instant::now();
        let base = fx.base();
        let t_base = t0.elapsed();
        let mut f = FaultSet::new(&fx.topo);
        f.fail_link(&fx.topo, NodeId(17), 0, Direction::Plus);
        let t1 = Instant::now();
        let o = base.reverify_outcome(&f);
        let t_out = t1.elapsed();
        println!("{scheme:?} vcs{vcs}: base {:?} in {t_base:?}; outcome {o:?} in {t_out:?}", base.base_verdict().name());
    }
}

