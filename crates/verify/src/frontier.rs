//! Fault-frontier sweeps: a scheme's static robustness margin.
//!
//! For a base configuration and a set of fault points (single failed
//! links, sampled double links, failed routers), classify each point as
//! *verdict-preserving* (the degraded verdict keeps the base verdict's
//! rank) or *verdict-degrading* (the rank drops — e.g. `ProvenFree` →
//! `Unsafe`). The aggregate is the configuration's fault frontier: how
//! much static safety margin the scheme carries.
//!
//! ## Fault-orbit memoization
//!
//! A full single-link sweep of a 16×16 torus is 512 degraded re-verdicts;
//! at ~1 s per from-scratch 16×16 build that is far outside interactive
//! budgets, and (on even-radix tori) the incremental segment reuse of
//! `crate::incremental` cannot help — every link is minimally productive
//! toward every destination. What *does* collapse the sweep is the same
//! symmetry the PR 8 orbit quotient exploits, applied to fault points:
//! torus routing is translation-equivariant up to dateline relabeling, so
//! two fault sets related by a torus translation produce isomorphic
//! degraded dependency structures and identical verdict ranks. Fault
//! points are therefore grouped by a translation-canonical orbit key and
//! one representative per orbit is re-verified; a 512-point single-link
//! sweep costs `dims` representative verdicts.
//!
//! The guardrails mirror PR 8: in debug builds every memoized replication
//! (on topologies small enough to afford it) is re-derived individually
//! and must agree, and meshes — which have no translation symmetry — get
//! per-point keys, i.e. no memoization at all (there the incremental
//! segment reuse carries the cost instead). A frontier report therefore
//! *claims* exactly what was computed: every point's verdict equals the
//! representative's, which equals a from-scratch degraded analysis in
//! every cross-checked build.

use crate::incremental::{BaseAnalysis, FaultOutcome};
use mdd_obs::{counter_add, CounterId};
use mdd_routing::Scheme;
use mdd_topology::{Direction, FaultSet, NodeId, Topology, TopologyKind};

/// Whether a fault point keeps or lowers the base verdict's rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// The degraded verdict has the same rank as (or better than) the
    /// base verdict.
    Preserving,
    /// The degraded verdict's rank is strictly lower than the base's.
    Degrading,
}

/// One classified fault point.
#[derive(Clone, Debug)]
pub struct FaultPoint {
    /// Stable human-readable fault label ([`FaultSet::label`]).
    pub label: String,
    /// Verdict name of the degraded configuration.
    pub verdict: &'static str,
    /// Verdict rank of the degraded configuration.
    pub rank: u8,
    /// Preserving or degrading, relative to the base verdict.
    pub class: FaultClass,
}

/// A classified fault sweep for one configuration.
#[derive(Clone, Debug)]
pub struct FrontierReport {
    /// The pristine configuration's verdict name.
    pub base_verdict: &'static str,
    /// The pristine configuration's verdict rank.
    pub base_rank: u8,
    /// Every classified fault point, in enumeration order.
    pub points: Vec<FaultPoint>,
    /// Number of verdict-preserving points.
    pub preserving: usize,
    /// Number of verdict-degrading points.
    pub degrading: usize,
}

/// Resolve one fault's verdict rank from its orbit-memoized graph
/// outcome plus the position-dependent mechanism checks — exactly the
/// branch structure of the full classifier, minus witness construction.
pub fn fault_rank(base: &BaseAnalysis, fault: &FaultSet, outcome: FaultOutcome) -> u8 {
    match outcome {
        FaultOutcome::Stranded => 0,
        FaultOutcome::AllSafe => 2,
        FaultOutcome::Residue { deflectable } => match base.config().scheme() {
            Scheme::StrictAvoidance { .. } => 0,
            Scheme::DeflectiveRecovery => u8::from(deflectable),
            Scheme::ProgressiveRecovery => {
                u8::from(crate::pr_ring_intact(base.config().topo(), Some(fault)))
            }
        },
    }
}

/// The verdict name corresponding to a rank (the frontier never carries
/// witnesses, so the rank determines the name).
fn rank_name(rank: u8) -> &'static str {
    match rank {
        0 => "Unsafe",
        1 => "RecoverableCycles",
        _ => "ProvenFree",
    }
}

impl FrontierReport {
    /// Assemble a report from evaluated `(fault, outcome)` pairs and bump
    /// the `fault_points_classified` counter. This is the single
    /// assembly point shared by the sequential sweep below and the
    /// engine's pool-parallel sweep. In debug builds on topologies with
    /// ≤ 64 routers, every point's rank is re-derived by the full
    /// incremental re-verdict (itself cross-checked from scratch) and
    /// must agree — the guardrail that keeps orbit memoization honest.
    pub fn assemble(
        base: &BaseAnalysis,
        evaluated: Vec<(FaultSet, FaultOutcome)>,
    ) -> FrontierReport {
        let base_rank = base.base_verdict().rank();
        let mut report = FrontierReport {
            base_verdict: base.base_verdict().name(),
            base_rank,
            points: Vec::with_capacity(evaluated.len()),
            preserving: 0,
            degrading: 0,
        };
        for (fault, outcome) in evaluated {
            let rank = fault_rank(base, &fault, outcome);
            #[cfg(debug_assertions)]
            if base.config().topo().num_routers() <= 64 {
                let full = base.reverify(&fault);
                assert_eq!(
                    (full.rank(), full.name()),
                    (rank, rank_name(rank)),
                    "fault-orbit outcome diverged from the full re-verdict for {}",
                    fault.label(),
                );
            }
            let class = if rank < base_rank {
                FaultClass::Degrading
            } else {
                FaultClass::Preserving
            };
            match class {
                FaultClass::Preserving => report.preserving += 1,
                FaultClass::Degrading => report.degrading += 1,
            }
            report.points.push(FaultPoint {
                label: fault.label(),
                verdict: rank_name(rank),
                rank,
                class,
            });
        }
        counter_add(CounterId::FaultPointsClassified, report.points.len() as u64);
        report
    }

    /// Render the report as JSON (stable key order, no external deps).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"base_verdict\": \"{}\",\n", self.base_verdict));
        s.push_str(&format!("  \"base_rank\": {},\n", self.base_rank));
        s.push_str(&format!("  \"preserving\": {},\n", self.preserving));
        s.push_str(&format!("  \"degrading\": {},\n", self.degrading));
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let sep = if i + 1 == self.points.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"fault\": \"{}\", \"verdict\": \"{}\", \"rank\": {}, \"class\": \"{}\"}}{sep}\n",
                p.label,
                p.verdict,
                p.rank,
                match p.class {
                    FaultClass::Preserving => "preserving",
                    FaultClass::Degrading => "degrading",
                },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Translate `node` by `t` steps along dimension `d` (mod radix).
fn translate_along(topo: &Topology, node: NodeId, d: usize, t: u32) -> NodeId {
    let mut id = node.index() as u32;
    let k = topo.radix(d);
    let mut stride = 1u32;
    for e in 0..d {
        stride *= topo.radix(e);
    }
    let c = topo.coord_along(node, d);
    id -= c * stride;
    id += ((c + t) % k) * stride;
    NodeId(id)
}

/// The orbit key of a fault set under the symmetry the degraded analysis
/// actually has: translation along the failed links' own dimension. For a
/// torus fault set whose failed links all lie in one dimension `d` (and
/// no failed routers), the key is the lexicographically smallest
/// rendering over all `radix(d)` slides along `d`. Everything else —
/// meshes, router faults, links spanning several dimensions — is its own
/// orbit (`FaultSet::label`): full translation is *not* used because the
/// dateline-classed escape VCs make the outcome depend on the fault's
/// position relative to the datelines of every other dimension.
pub fn fault_orbit_key(topo: &Topology, fault: &FaultSet) -> String {
    let links = fault.failed_links();
    if topo.kind() != TopologyKind::Torus
        || links.is_empty()
        || fault.num_failed_routers() > 0
        || links.iter().any(|&(_, d, _)| d != links[0].1)
    {
        return fault.label();
    }
    let d = links[0].1;
    let mut best: Option<String> = None;
    for t in 0..topo.radix(d) {
        let mut parts: Vec<String> = links
            .iter()
            .map(|&(n, ld, dir)| {
                let sign = if dir == Direction::Plus { '+' } else { '-' };
                format!("L{}{}d{}", translate_along(topo, n, d, t).index(), sign, ld)
            })
            .collect();
        parts.sort();
        let key = parts.join("|");
        if best.as_ref().is_none_or(|b| key < *b) {
            best = Some(key);
        }
    }
    best.expect("non-empty link set yields a key")
}

/// Sequentially classify `faults` against `base`, memoizing graph
/// outcomes by fault orbit ([`fault_orbit_key`]) and resolving the
/// position-dependent mechanism checks per fault. The engine's
/// pool-parallel sweep performs the same grouping with one pool task per
/// orbit representative; both paths funnel through
/// [`FrontierReport::assemble`] and its debug cross-check.
pub fn classify_fault_points(base: &BaseAnalysis, faults: Vec<FaultSet>) -> FrontierReport {
    let mut memo: Vec<(String, FaultOutcome)> = Vec::new();
    let mut evaluated: Vec<(FaultSet, FaultOutcome)> = Vec::with_capacity(faults.len());
    for fault in faults {
        let key = fault_orbit_key(base.config().topo(), &fault);
        let outcome = match memo.iter().find(|(k, _)| *k == key) {
            Some(&(_, o)) => o,
            None => {
                let o = base.reverify_outcome(&fault);
                memo.push((key, o));
                o
            }
        };
        evaluated.push((fault, outcome));
    }
    FrontierReport::assemble(base, evaluated)
}

/// Deterministically sample `count` distinct double-link fault sets from
/// `topo`'s canonical link enumeration (a tiny multiplicative PRNG keyed
/// by `seed`; no external RNG dependency).
pub fn sampled_double_link_faults(topo: &Topology, count: usize, seed: u64) -> Vec<FaultSet> {
    let singles = mdd_topology::single_link_faults(topo);
    let n = singles.len();
    if n < 2 {
        return Vec::new();
    }
    let mut state = seed | 1;
    let mut next = move || {
        // SplitMix64 finalizer: full-period, deterministic, dependency-free.
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut seen: Vec<(usize, usize)> = Vec::new();
    let mut out = Vec::new();
    let max_pairs = n * (n - 1) / 2;
    while out.len() < count.min(max_pairs) {
        let i = (next() % n as u64) as usize;
        let j = (next() % n as u64) as usize;
        if i == j {
            continue;
        }
        let pair = (i.min(j), i.max(j));
        if seen.contains(&pair) {
            continue;
        }
        seen.push(pair);
        let mut f = singles[pair.0].clone();
        let &(node, d, dir) = &singles[pair.1].failed_links()[0];
        f.fail_link(topo, node, d, dir);
        out.push(f);
    }
    out
}
