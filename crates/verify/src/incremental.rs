//! Incremental re-verdicts over degraded topologies.
//!
//! A fault set is a *delta* over the base topology, and most of the
//! static CDG does not depend on the faulted channels: the per-(message
//! type, destination) packet segments (`cdg::Segment`) are independent
//! constructions, and a segment whose destination provably cannot observe
//! the fault set is **byte-identical** between the base and the degraded
//! analysis. [`BaseAnalysis`] therefore caches the base segments once and
//! [`BaseAnalysis::reverify`] rebuilds only the dirty ones with the
//! fault-steered [`DegradedRouting`], splicing clean base segments in
//! unchanged (counted by `analyze_incremental_hits`).
//!
//! ## When is a destination clean?
//!
//! A destination router `r` is clean under fault set `F` when:
//!
//! 1. no router failed (a dead endpoint changes seeding everywhere);
//! 2. the degraded BFS distance field to `r` equals the closed-form
//!    minimal distance at *every* router (no detours toward `r`); and
//! 3. no failed directed link is minimally productive toward `r` (no
//!    router near the fault loses a candidate toward `r`).
//!
//! Under 1–3, [`DegradedRouting`] emits exactly the base
//! `SchemeRouting`'s candidate vector at every state of `r`'s sweep
//! (strictly-distance-decreasing directions coincide with minimal
//! directions, and the degraded escape — first productive direction in
//! dimension order, `Plus` on ties — reproduces `dor_direction`), so the
//! segment a fresh degraded build would produce is the cached one. The
//! debug build re-derives every degraded analysis from scratch and
//! asserts full verdict *and witness* equality (the same guardrail
//! pattern as the orbit quotient's cross-check).
//!
//! Note the honest failure mode of this criterion: on meshes and
//! even-radix tori every link is minimally productive toward every
//! destination in one of its two directions (on a mesh trivially; on an
//! even torus because wrap distances never tie strictly), so a link fault
//! dirties *all* segments and the incremental path degrades gracefully to
//! a from-scratch degraded build. Odd-radix tori, whose wrap ties leave
//! whole coordinate slabs minimally indifferent to a given link, see real
//! reuse. The fault-frontier sweep (`crate::frontier`) layers a second,
//! orthogonal reduction (fault-orbit memoization along the failed link's
//! dimension) on top to keep full sweeps fast either way.

use crate::cdg::{self, Segment};
use crate::{classify_graph, layout_for, Verdict, VerifyInput};
use mdd_obs::{counter_add, CounterId};
use mdd_protocol::{MsgType, PatternSpec, QueueOrg};
use mdd_routing::{Scheme, SchemeRouting};
use mdd_topology::{Direction, FaultSet, NodeId, Topology};

/// An owned configuration for the analysis engine: everything
/// [`VerifyInput`] borrows, in one movable bundle (the engine and CLI
/// hold analyses across calls, so borrowing from a `SimConfig` is too
/// restrictive).
#[derive(Clone, Debug)]
pub struct AnalysisConfig {
    topo: Topology,
    scheme: Scheme,
    routing: SchemeRouting,
    pattern: PatternSpec,
    queue_org: QueueOrg,
}

impl AnalysisConfig {
    /// Bundle an owned analysis configuration.
    pub fn new(
        topo: Topology,
        scheme: Scheme,
        routing: SchemeRouting,
        pattern: PatternSpec,
        queue_org: QueueOrg,
    ) -> Self {
        AnalysisConfig { topo, scheme, routing, pattern, queue_org }
    }

    /// The borrowed [`VerifyInput`] view of this configuration.
    pub fn input(&self) -> VerifyInput<'_> {
        VerifyInput {
            topo: &self.topo,
            scheme: self.scheme,
            routing: &self.routing,
            pattern: &self.pattern,
            queue_org: self.queue_org,
        }
    }

    /// The configuration's topology.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// The configuration's scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }
}

/// A fully-built base analysis: the pristine verdict plus the cached
/// segments incremental re-verdicts splice from.
#[derive(Debug)]
pub struct BaseAnalysis {
    cfg: AnalysisConfig,
    base_verdict: Verdict,
    net_types: Vec<MsgType>,
    guaranteed: Vec<bool>,
    /// Packet segments, indexed `type_index * num_nics + dst.index()`.
    packet: Vec<Segment>,
    /// Endpoint segment (carries the deflection-credit overlay).
    endpoint: Segment,
}

impl BaseAnalysis {
    /// Build the base analysis: one full enumeration, after which every
    /// [`BaseAnalysis::reverify`] call pays only for what a fault set
    /// actually perturbs.
    pub fn analyze(cfg: AnalysisConfig) -> BaseAnalysis {
        let (net_types, guaranteed, packet, endpoint, base_verdict) = {
            let input = cfg.input();
            let layout = layout_for(&input);
            let net_types = cdg::net_types(&input);
            let guaranteed = cdg::guaranteed_ejection(&input);
            let nnics = input.topo.num_nics() as usize;
            let mut packet: Vec<Segment> = Vec::with_capacity(net_types.len() * nnics);
            for (ti, &t) in net_types.iter().enumerate() {
                let twin = interchangeable_earlier_type(&input, &net_types[..ti], t, &guaranteed);
                for (di, dst) in input.topo.nics().enumerate() {
                    let seg = match twin {
                        Some((t0i, t0)) => cdg::retype_segment(
                            &packet[t0i * nnics + di],
                            t,
                            eject_patch(&input, &layout, t0, t, dst),
                        ),
                        None => cdg::packet_segment(
                            &input,
                            input.routing,
                            &layout,
                            t,
                            dst,
                            guaranteed[t.index()],
                            None,
                            None,
                        ),
                    };
                    packet.push(seg);
                }
            }
            let endpoint = cdg::endpoint_segment(&input, &layout, None);
            let graph = cdg::assemble(&input, packet.iter().chain(std::iter::once(&endpoint)));
            let base_verdict = classify_graph(&input, input.topo, None, &graph);
            (net_types, guaranteed, packet, endpoint, base_verdict)
        };
        BaseAnalysis {
            cfg,
            base_verdict,
            net_types,
            guaranteed,
            packet,
            endpoint,
        }
    }

    /// The configuration this analysis was built for.
    pub fn config(&self) -> &AnalysisConfig {
        &self.cfg
    }

    /// The verdict of the pristine (fault-free) configuration.
    pub fn base_verdict(&self) -> &Verdict {
        &self.base_verdict
    }

    /// Splice the degraded segment set: rebuild the dirty packet
    /// segments over the fault-steered routing, keep the clean ones as
    /// `None` (use the cached base segment), and bump
    /// `analyze_incremental_hits` for every reuse.
    fn rebuild_dirty(&self, faults: &FaultSet, fields: &[Vec<u32>]) -> Vec<Option<Segment>> {
        let input = self.cfg.input();
        let topo = &self.cfg.topo;
        let layout = layout_for(&input);
        let degraded = mdd_routing::DegradedRouting::new(&self.cfg.routing, faults, fields);
        let nnics = topo.num_nics() as usize;
        let mut reused = 0u64;
        let mut rebuilt: Vec<Option<Segment>> = Vec::with_capacity(self.packet.len());
        let mut dst_router_clean: Vec<Option<bool>> = vec![None; topo.num_routers() as usize];
        for (ti, &t) in self.net_types.iter().enumerate() {
            let twin =
                interchangeable_earlier_type(&input, &self.net_types[..ti], t, &self.guaranteed);
            for (di, dst) in topo.nics().enumerate() {
                let r = topo.nic_router(dst);
                let clean = *dst_router_clean[r.index()]
                    .get_or_insert_with(|| dst_clean(topo, faults, &fields[r.index()], r));
                if clean {
                    reused += 1;
                    rebuilt.push(None);
                    continue;
                }
                // A dirty destination is dirty for every type, so an
                // interchangeable earlier type's rebuilt segment is
                // always present to derive from.
                let seg = match twin {
                    Some((t0i, t0)) => cdg::retype_segment(
                        rebuilt[t0i * nnics + di]
                            .as_ref()
                            .expect("dst cleanliness is type-independent"),
                        t,
                        eject_patch(&input, &layout, t0, t, dst),
                    ),
                    None => cdg::packet_segment(
                        &input,
                        &degraded,
                        &layout,
                        t,
                        dst,
                        self.guaranteed[t.index()],
                        Some(faults),
                        Some(&self.packet[ti * nnics + di]),
                    ),
                };
                rebuilt.push(Some(seg));
            }
        }
        if faults.num_failed_routers() == 0 {
            reused += 1;
        }
        counter_add(CounterId::AnalyzeIncrementalHits, reused);
        rebuilt
    }

    /// Assemble the degraded CDG from the spliced segment set produced by
    /// [`BaseAnalysis::rebuild_dirty`] (deflection-credit overlay edges
    /// ride along in the graph's `deflection_extra`).
    fn assemble_degraded<'s>(
        &'s self,
        input: &VerifyInput<'s>,
        faults: &FaultSet,
        rebuilt: &[Option<Segment>],
    ) -> cdg::StaticCdg<'s> {
        let ep = if faults.num_failed_routers() == 0 {
            self.endpoint.clone()
        } else {
            let layout = layout_for(input);
            cdg::endpoint_segment(input, &layout, Some(faults))
        };
        let segs = self
            .packet
            .iter()
            .zip(rebuilt)
            .map(|(base, re)| re.as_ref().unwrap_or(base));
        let all: Vec<&Segment> = segs.chain(std::iter::once(&ep)).collect();
        cdg::assemble(input, all)
    }


    /// Re-classify the configuration with `faults` applied, reusing every
    /// base segment the fault set provably cannot have changed. In debug
    /// builds (≤ 256 routers) the result is cross-checked for full
    /// verdict and witness equality against [`verify_faulted`]'s
    /// from-scratch degraded build.
    pub fn reverify(&self, faults: &FaultSet) -> Verdict {
        if faults.is_empty() {
            return self.base_verdict.clone();
        }
        let input = self.cfg.input();
        let topo = &self.cfg.topo;
        let fields = faults.distance_fields(topo);
        let rebuilt = self.rebuild_dirty(faults, &fields);
        let graph = self.assemble_degraded(&input, faults, &rebuilt);
        let verdict = classify_graph(&input, topo, Some(faults), &graph);
        drop(graph);

        #[cfg(debug_assertions)]
        if topo.num_routers() <= 256 {
            let scratch = verify_faulted(&input, faults);
            assert_eq!(
                (verdict.name(), verdict.witness().map(|w| &w.rendered)),
                (scratch.name(), scratch.witness().map(|w| &w.rendered)),
                "incremental re-verdict diverged from from-scratch degraded analysis for {}",
                faults.label(),
            );
        }
        verdict
    }

    /// The mechanism-independent graph outcome of the degraded analysis,
    /// *without* witness construction — the fast path the fault-frontier
    /// sweep memoizes per fault orbit. The position-dependent mechanism
    /// checks (progressive recovery's ring liveness) are applied per
    /// fault by the caller; everything computed here is
    /// translation-equivariant.
    pub fn reverify_outcome(&self, faults: &FaultSet) -> FaultOutcome {
        let input = self.cfg.input();
        let topo = &self.cfg.topo;
        if faults.is_empty() {
            return match self.base_verdict.rank() {
                2 => FaultOutcome::AllSafe,
                _ => FaultOutcome::Residue {
                    deflectable: self.base_verdict.rank() == 1
                        && matches!(self.cfg.scheme, Scheme::DeflectiveRecovery),
                },
            };
        }
        let fields = faults.distance_fields(topo);
        let rebuilt = self.rebuild_dirty(faults, &fields);
        let graph = self.assemble_degraded(&input, faults, &rebuilt);
        if crate::strand_witness(&graph).is_some() {
            return FaultOutcome::Stranded;
        }
        if crate::analyze::peel(&graph).all_safe {
            return FaultOutcome::AllSafe;
        }
        let deflectable = matches!(self.cfg.scheme, Scheme::DeflectiveRecovery)
            && self.cfg.pattern.protocol().backoff_type().is_some()
            && crate::analyze::peel_with(&graph, &graph.deflection_extra).all_safe;
        FaultOutcome::Residue { deflectable }
    }
}

/// The mechanism-independent outcome of a degraded dependency-graph
/// analysis (see [`BaseAnalysis::reverify_outcome`]): what the graph
/// itself says before a scheme's drain mechanism is consulted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Some occupant has no admissible wait candidate (a destination is
    /// unreachable): permanently wedged regardless of scheme.
    Stranded,
    /// The escape peel discharges the whole graph: provably free.
    AllSafe,
    /// Dependency cycles remain; `deflectable` records whether the
    /// deflection-credited re-peel discharges them (deflective recovery
    /// only; always `false` otherwise).
    Residue {
        /// Whether every residual cycle is deflectable into a backoff
        /// reply.
        deflectable: bool,
    },
}

/// The earliest already-built net type whose packet segments can stand in
/// for `t`'s via [`cdg::retype_segment`]: identical [`mdd_routing::TypeVcs`]
/// (the BFS visits the same states and emits the same candidate VCs, both
/// pristine and degraded — `DegradedRouting` consults only the type's VC
/// set) and identical guaranteed-ejection status (same sink structure).
/// Under PR's uniform fully adaptive map every type collapses onto the
/// first; partitioned maps (SA, DR) never match.
fn interchangeable_earlier_type(
    input: &VerifyInput<'_>,
    earlier: &[MsgType],
    t: MsgType,
    guaranteed: &[bool],
) -> Option<(usize, MsgType)> {
    let map = input.routing.map();
    earlier.iter().copied().enumerate().find(|&(_, t0)| {
        guaranteed[t0.index()] == guaranteed[t.index()] && *map.for_type(t0) == *map.for_type(t)
    })
}

/// The ejection-wait vertex substitution between two interchangeable
/// types' segments for `dst` (`None` when the queue organization maps
/// both types to the same destination input queue).
fn eject_patch(
    input: &VerifyInput<'_>,
    layout: &mdd_deadlock::ResourceLayout,
    t0: MsgType,
    t: MsgType,
    dst: mdd_topology::NicId,
) -> Option<(u32, u32)> {
    let proto = input.pattern.protocol();
    let q0 = input.queue_org.queue_index(proto, t0);
    let q1 = input.queue_org.queue_index(proto, t);
    (q0 != q1).then(|| (layout.in_queue_vertex(dst, q0), layout.in_queue_vertex(dst, q1)))
}

/// Is destination router `r` provably unaffected by `faults`? See the
/// module docs for the three conditions and why they make the cached
/// base segment byte-identical to a fresh degraded build.
fn dst_clean(topo: &Topology, faults: &FaultSet, field: &[u32], r: NodeId) -> bool {
    if faults.num_failed_routers() > 0 {
        return false;
    }
    if topo.routers().any(|n| field[n.index()] != topo.distance(n, r)) {
        return false;
    }
    // A directed link (a -> b) participates in minimal routing toward `r`
    // exactly when stepping to `b` decreases the (per-dimension
    // decomposable) minimal distance.
    let productive_toward = |a: NodeId, d: usize, dir: Direction| -> bool {
        match topo.neighbor(a, d, dir) {
            Some(b) => topo.distance(b, r) < topo.distance(a, r),
            None => false,
        }
    };
    !faults.failed_links().iter().any(|&(u, d, dir)| {
        let v = topo.neighbor(u, d, dir).expect("failed links exist in the topology");
        productive_toward(u, d, dir) || productive_toward(v, d, dir.opposite())
    })
}

/// From-scratch static classification of `input` with `faults` applied:
/// every segment is rebuilt over the fault-steered routing. This is the
/// oracle the incremental path is cross-checked against; it is also the
/// entry point when no [`BaseAnalysis`] is worth amortizing.
pub fn verify_faulted(input: &VerifyInput<'_>, faults: &FaultSet) -> Verdict {
    if faults.is_empty() {
        return crate::verify(input);
    }
    let topo = input.topo;
    let layout = layout_for(input);
    let fields = faults.distance_fields(topo);
    let degraded = mdd_routing::DegradedRouting::new(input.routing, faults, &fields);
    let guaranteed = cdg::guaranteed_ejection(input);
    let mut packet = Vec::new();
    for t in cdg::net_types(input) {
        for dst in topo.nics() {
            packet.push(cdg::packet_segment(
                input,
                &degraded,
                &layout,
                t,
                dst,
                guaranteed[t.index()],
                Some(faults),
                None,
            ));
        }
    }
    let ep = cdg::endpoint_segment(input, &layout, Some(faults));
    let graph = cdg::assemble(input, packet.iter().chain(std::iter::once(&ep)));
    classify_graph(input, topo, Some(faults), &graph)
}
