//! Static channel-dependency-graph construction.
//!
//! The graph is expressed as *occupant classes* over the shared
//! [`ResourceLayout`] vertex set. A class describes one way a resource can
//! be held — a packet of some (type, destination, dateline-mask) in a
//! router VC, a transaction-chain head in an endpoint input queue, a
//! generated message awaiting injection in an output queue — together
//! with the OR-wait candidate set the holder needs progress on. Distinct
//! classes occupying the same vertex are AND-composed: the vertex is only
//! guaranteed to drain when *every* class that can occupy it drains.
//!
//! Router-VC classes are enumerated by a breadth-first sweep per (message
//! type, destination NIC) over `(router, dateline mask)` states that
//! invokes the scheme's real [`Routing`] implementation, so the static
//! graph contains exactly the dependencies the configured routing function
//! can produce at run time — including the dateline-class escape
//! structure that makes Duato-style peeling succeed.
//!
//! Deflective-recovery preallocation is modelled faithfully: message
//! types whose every chain occurrence is covered by an input-queue
//! earmark (terminating replies at their requester, return replies at
//! the servicing node) are *guaranteed ejection* — their delivery edge is
//! a sink rather than a wait on the destination queue. This is what makes
//! DR's reply network statically safe, mirroring `mdd-nic`'s
//! `can_accept`.

use crate::VerifyInput;
use mdd_deadlock::ResourceLayout;
use mdd_protocol::{
    HopTarget, IdAlloc, Message, MessageStore, MsgKind, MsgType, ShapeId, TransactionId,
};
use mdd_router::{PacketState, RouteCandidate, Routing};
use mdd_routing::Scheme;
use mdd_topology::{NicId, NodeId};

/// How much of the scheme's recovery mechanism the dependency graph may
/// take credit for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum MechanismCredit {
    /// Pure avoidance semantics: service, routing and preallocation only.
    /// A complete peel under this graph is a deadlock-freedom proof.
    None,
    /// Additionally credit deflective recovery: a blocked head whose
    /// subordinate is a request may alternatively be converted into a
    /// backoff reply (waits on the backoff type's output queue). A
    /// complete peel under this graph means every base-graph cycle is
    /// deflectable.
    Deflection,
}

/// One way a resource vertex can be occupied, for witness rendering.
#[derive(Clone, Copy, Debug)]
pub(crate) enum ClassKind {
    /// A packet in a router input VC (or being injected on a local port).
    Packet {
        /// Message type of the packet.
        mtype: MsgType,
        /// Destination NIC.
        dst: NicId,
        /// Dateline-crossing mask accumulated so far (bit per dimension).
        mask: u8,
    },
    /// A chain head at an endpoint input queue awaiting MC service.
    InHead {
        /// Transaction shape the head belongs to.
        shape: ShapeId,
        /// Chain position of the head.
        pos: usize,
    },
    /// An MC service additionally awaiting the return-reply earmark slot
    /// (deflective recovery's second preallocation).
    EarmarkWait {
        /// Transaction shape being serviced.
        shape: ShapeId,
        /// Chain position being serviced.
        pos: usize,
    },
    /// A generated message at an endpoint output queue awaiting one
    /// specific injection VC.
    OutHead {
        /// Message type awaiting injection.
        mtype: MsgType,
        /// The injection VC this class waits on.
        vc: u8,
    },
}

/// The static CDG: occupant classes over the shared resource vertex set.
pub(crate) struct StaticCdg<'a> {
    pub layout: ResourceLayout,
    pub input: VerifyInput<'a>,
    /// Class descriptors (for witness notes).
    pub kind: Vec<ClassKind>,
    /// True when the class has an unconditional escape (guaranteed
    /// consumption / terminating sink): it is safe by itself.
    pub sink: Vec<bool>,
    /// OR-wait candidate vertices per class (deduplicated).
    pub cands: Vec<Vec<u32>>,
    /// Vertices each class can occupy (deduplicated).
    pub members: Vec<Vec<u32>>,
    /// Classes that can occupy each vertex (deduplicated).
    pub vertex_classes: Vec<Vec<u32>>,
}

impl StaticCdg<'_> {
    /// Witness note for one class: the blocked occupant, in the mnemonic
    /// vocabulary of the protocol spec.
    pub fn note(&self, class: u32) -> String {
        let proto = self.input.pattern.protocol();
        match self.kind[class as usize] {
            ClassKind::Packet { mtype, dst, mask } => {
                let name = proto.spec(mtype).name;
                if mask == 0 {
                    format!("{name} to nic {}", dst.index())
                } else {
                    format!("{name} to nic {} (crossed dateline)", dst.index())
                }
            }
            ClassKind::InHead { shape, pos } => {
                let s = self.input.pattern.shape(shape);
                let head = proto.spec(s.mtype(pos)).name;
                let sub = proto.spec(s.mtype(pos + 1)).name;
                format!("head {head} -> {sub}")
            }
            ClassKind::EarmarkWait { shape, pos } => {
                let s = self.input.pattern.shape(shape);
                let head = proto.spec(s.mtype(pos)).name;
                let ret = proto.spec(s.mtype(pos + 2)).name;
                format!("{head} service awaiting {ret} earmark")
            }
            ClassKind::OutHead { mtype, vc } => {
                format!("{} awaiting injection vc {vc}", proto.spec(mtype).name)
            }
        }
    }
}

/// Message types under deflective recovery whose delivery is guaranteed
/// by input-queue earmarks (see `mdd-nic::Nic::can_accept`): the backoff
/// type sinks unconditionally; a terminating reply claims the slot
/// preallocated at request issue provided every chain occurrence is
/// delivered to the requester; a non-terminating reply claims the slot
/// preallocated at its grandparent's service provided it returns to the
/// servicing node.
fn guaranteed_ejection(input: &VerifyInput<'_>) -> Vec<bool> {
    let proto = input.pattern.protocol();
    let n = proto.num_types();
    let mut out = vec![false; n];
    if !matches!(input.scheme, Scheme::DeflectiveRecovery) {
        return out;
    }
    for t in proto.msg_types() {
        if Some(t) == proto.backoff_type() {
            out[t.index()] = true;
            continue;
        }
        let mut occurs = false;
        let mut covered = true;
        for sid in active_shapes(input) {
            let shape = input.pattern.shape(sid);
            for pos in 0..shape.len() {
                if shape.mtype(pos) != t {
                    continue;
                }
                occurs = true;
                let ok = if proto.is_terminating(t) {
                    shape.target(pos) == HopTarget::Requester
                } else {
                    proto.kind(t) == MsgKind::Reply
                        && pos >= 2
                        && shape.target(pos) == shape.target(pos - 2)
                };
                covered &= ok;
            }
        }
        out[t.index()] = occurs && covered;
    }
    out
}

/// Shape ids with positive workload weight.
fn active_shapes<'i>(input: &VerifyInput<'i>) -> impl Iterator<Item = ShapeId> + 'i {
    let pattern = input.pattern;
    (0..pattern.num_shapes())
        .map(|i| ShapeId(i as u16))
        .filter(move |&sid| pattern.weight(sid) > 0.0)
}

/// Build the static CDG for `input` under `credit`.
pub(crate) fn build<'a>(input: &VerifyInput<'a>, credit: MechanismCredit) -> StaticCdg<'a> {
    let topo = input.topo;
    let proto = input.pattern.protocol();
    let org = input.queue_org;
    let routing = input.routing;
    let layout = crate::layout_for(input);
    let nv = layout.num_vertices();
    assert!(topo.dims() <= 8, "dateline masks are one bit per dimension");

    let dr = matches!(input.scheme, Scheme::DeflectiveRecovery);
    let bkf = proto.backoff_type();

    // Message types that can appear in the network: every type of an
    // active chain, plus — under deflective recovery only — the backoff
    // type (it is generated exclusively by deflection, so including it
    // under SA/PR would fabricate dependencies that cannot occur).
    let mut chain_types: Vec<MsgType> = Vec::new();
    for sid in active_shapes(input) {
        let shape = input.pattern.shape(sid);
        for pos in 0..shape.len() {
            let t = shape.mtype(pos);
            if !chain_types.contains(&t) {
                chain_types.push(t);
            }
        }
    }
    let mut net_types = chain_types.clone();
    if dr {
        if let Some(b) = bkf {
            if !net_types.contains(&b) {
                net_types.push(b);
            }
        }
    }

    let guaranteed = guaranteed_ejection(input);

    let mut kind: Vec<ClassKind> = Vec::new();
    let mut sink: Vec<bool> = Vec::new();
    let mut cands: Vec<Vec<u32>> = Vec::new();
    let mut membership: Vec<(u32, u32)> = Vec::new(); // (class, vertex)

    // A scratch message so the routing trait can be driven without a
    // simulator: only the packet-state fields matter.
    let mut scratch_store = MessageStore::new();
    let mut ids = IdAlloc::new();
    let scratch = scratch_store.insert(Message {
        id: ids.next_msg(),
        txn: TransactionId(0),
        mtype: MsgType(0),
        shape: ShapeId(0),
        chain_pos: 0,
        src: NicId(0),
        dst: NicId(0),
        requester: NicId(0),
        home: NicId(0),
        owner: NicId(0),
        length_flits: 1,
        created: 0,
        is_backoff: false,
        rescued: false,
        sharers: 0,
    });

    // --- Router-VC classes: BFS per (type, destination) over
    // --- (router, dateline mask) states driving the real routing function.
    let nr = topo.num_routers() as usize;
    let masks = 1usize << topo.dims();
    let mut state_class: Vec<u32> = vec![u32::MAX; nr * masks];
    let mut stack: Vec<(NodeId, u8)> = Vec::new();
    let mut rc_buf: Vec<RouteCandidate> = Vec::new();
    let mut inj_buf: Vec<u8> = Vec::new();

    for &t in &net_types {
        let qi = org.queue_index(proto, t);
        let mut pkt = PacketState {
            msg: scratch,
            mtype: t,
            src: NicId(0),
            dst: NicId(0),
            dst_router: NodeId(0),
            crossed_dateline: 0,
            injected_at: 0,
        };
        inj_buf.clear();
        routing.injection_vcs(&pkt, &mut inj_buf);

        for dst in topo.nics() {
            let dst_router = topo.nic_router(dst);
            pkt.dst = dst;
            pkt.dst_router = dst_router;
            state_class.fill(u32::MAX);
            stack.clear();

            // Seed: injections from every other endpoint, occupying the
            // local-port VCs the routing function admits at injection.
            for src in topo.nics() {
                if src == dst {
                    continue;
                }
                let r = topo.nic_router(src);
                let c = intern_state(
                    &mut state_class,
                    &mut stack,
                    &mut kind,
                    &mut sink,
                    &mut cands,
                    masks,
                    r,
                    0,
                    t,
                    dst,
                );
                let lp = topo.local_port(topo.nic_local_index(src));
                for &v in &inj_buf {
                    membership.push((c, layout.vc_vertex(r, lp, v)));
                }
            }

            while let Some((node, mask)) = stack.pop() {
                let c = state_class[node.index() * masks + mask as usize];
                pkt.crossed_dateline = mask;
                rc_buf.clear();
                routing.candidates(topo, node, &pkt, 0, &mut rc_buf);
                for rc in &rc_buf {
                    match topo.port_dim_dir(rc.port) {
                        Some((d, dir)) => {
                            let down = topo.neighbor(node, d, dir).expect("link exists");
                            let dport = topo.port(d, dir.opposite());
                            let mask2 = if topo.crosses_dateline(node, d, dir) {
                                mask | (1 << d)
                            } else {
                                mask
                            };
                            let vtx = layout.vc_vertex(down, dport, rc.vc);
                            cands[c as usize].push(vtx);
                            let c2 = intern_state(
                                &mut state_class,
                                &mut stack,
                                &mut kind,
                                &mut sink,
                                &mut cands,
                                masks,
                                down,
                                mask2,
                                t,
                                dst,
                            );
                            membership.push((c2, vtx));
                        }
                        None => {
                            // Ejection at the destination router: either
                            // consumption is guaranteed by an earmark
                            // (sink) or the packet waits on the
                            // destination input queue.
                            if guaranteed[t.index()] {
                                sink[c as usize] = true;
                            } else {
                                cands[c as usize].push(layout.in_queue_vertex(dst, qi));
                            }
                        }
                    }
                }
            }
        }
    }

    // --- Endpoint input-queue classes: the paper's `≺` edges. A
    // --- non-terminating, non-final head waits on its subordinate's
    // --- output queue; terminating heads sink (no class needed).
    for sid in active_shapes(input) {
        let shape = input.pattern.shape(sid);
        for pos in 0..shape.len() {
            let t = shape.mtype(pos);
            if proto.is_terminating(t) || shape.is_last(pos) {
                continue;
            }
            let sub = shape.mtype(pos + 1);
            let qi = org.queue_index(proto, t);
            let sub_q = org.queue_index(proto, sub);
            let deflectable = credit == MechanismCredit::Deflection
                && dr
                && proto.kind(sub) == MsgKind::Request;
            for nic in topo.nics() {
                let vtx = layout.in_queue_vertex(nic, qi);
                let mut cs = vec![layout.out_queue_vertex(nic, sub_q)];
                if deflectable {
                    if let Some(b) = bkf {
                        cs.push(layout.out_queue_vertex(nic, org.queue_index(proto, b)));
                    }
                }
                let c = push_class(
                    &mut kind,
                    &mut sink,
                    &mut cands,
                    ClassKind::InHead { shape: sid, pos },
                    false,
                    cs,
                );
                membership.push((c, vtx));
                // Deflective recovery's return-reply earmark: servicing
                // additionally needs a preallocatable slot in the return
                // reply's own input queue (an AND-wait, hence a second
                // class on the same vertex).
                if dr && pos + 2 < shape.len() {
                    let ret_q = org.queue_index(proto, shape.mtype(pos + 2));
                    let c2 = push_class(
                        &mut kind,
                        &mut sink,
                        &mut cands,
                        ClassKind::EarmarkWait { shape: sid, pos },
                        false,
                        vec![layout.in_queue_vertex(nic, ret_q)],
                    );
                    membership.push((c2, vtx));
                }
            }
        }
    }

    // --- Endpoint output-queue classes: a generated message awaits
    // --- injection. One class per admissible injection VC (AND-composed:
    // --- packetization may bind any one of them, so the queue is only
    // --- guaranteed to drain when each admissible channel drains).
    let mut out_types = chain_types;
    if dr {
        if let Some(b) = bkf {
            if !out_types.contains(&b) {
                out_types.push(b);
            }
        }
    }
    for &t in &out_types {
        let pkt = PacketState {
            msg: scratch,
            mtype: t,
            src: NicId(0),
            dst: NicId(0),
            dst_router: NodeId(0),
            crossed_dateline: 0,
            injected_at: 0,
        };
        inj_buf.clear();
        routing.injection_vcs(&pkt, &mut inj_buf);
        let oq = org.queue_index(proto, t);
        for nic in topo.nics() {
            let r = topo.nic_router(nic);
            let lp = topo.local_port(topo.nic_local_index(nic));
            let vtx = layout.out_queue_vertex(nic, oq);
            for &v in &inj_buf {
                let c = push_class(
                    &mut kind,
                    &mut sink,
                    &mut cands,
                    ClassKind::OutHead { mtype: t, vc: v },
                    false,
                    vec![layout.vc_vertex(r, lp, v)],
                );
                membership.push((c, vtx));
            }
        }
    }

    // --- Finalize: dedupe candidate sets and memberships.
    for cs in &mut cands {
        cs.sort_unstable();
        cs.dedup();
    }
    membership.sort_unstable();
    membership.dedup();
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); kind.len()];
    let mut vertex_classes: Vec<Vec<u32>> = vec![Vec::new(); nv];
    for (c, v) in membership {
        members[c as usize].push(v);
        vertex_classes[v as usize].push(c);
    }

    StaticCdg {
        layout,
        input: *input,
        kind,
        sink,
        cands,
        members,
        vertex_classes,
    }
}

fn push_class(
    kind: &mut Vec<ClassKind>,
    sink: &mut Vec<bool>,
    cands: &mut Vec<Vec<u32>>,
    k: ClassKind,
    snk: bool,
    cs: Vec<u32>,
) -> u32 {
    let id = kind.len() as u32;
    kind.push(k);
    sink.push(snk);
    cands.push(cs);
    id
}

/// Get-or-create the packet class for BFS state `(node, mask)`; newly
/// created states are pushed on the BFS stack.
#[allow(clippy::too_many_arguments)]
fn intern_state(
    state_class: &mut [u32],
    stack: &mut Vec<(NodeId, u8)>,
    kind: &mut Vec<ClassKind>,
    sink: &mut Vec<bool>,
    cands: &mut Vec<Vec<u32>>,
    masks: usize,
    node: NodeId,
    mask: u8,
    mtype: MsgType,
    dst: NicId,
) -> u32 {
    let slot = node.index() * masks + mask as usize;
    if state_class[slot] == u32::MAX {
        let c = push_class(
            kind,
            sink,
            cands,
            ClassKind::Packet { mtype, dst, mask },
            false,
            Vec::new(),
        );
        state_class[slot] = c;
        stack.push((node, mask));
    }
    state_class[slot]
}
