//! Static channel-dependency-graph construction.
//!
//! The graph is expressed as *occupant classes* over the shared
//! [`ResourceLayout`] vertex set. A class describes one way a resource can
//! be held — a packet of some (type, destination, dateline-mask) in a
//! router VC, a transaction-chain head in an endpoint input queue, a
//! generated message awaiting injection in an output queue — together
//! with the OR-wait candidate set the holder needs progress on. Distinct
//! classes occupying the same vertex are AND-composed: the vertex is only
//! guaranteed to drain when *every* class that can occupy it drains.
//!
//! Router-VC classes are enumerated by a breadth-first sweep per (message
//! type, destination NIC) over `(router, dateline mask)` states that
//! invokes the scheme's real [`Routing`] implementation, so the static
//! graph contains exactly the dependencies the configured routing function
//! can produce at run time — including the dateline-class escape
//! structure that makes Duato-style peeling succeed.
//!
//! Construction is *segmented*: each (type, destination) sweep produces an
//! independent [`Segment`] with local class ids, and [`assemble`]
//! concatenates segments into a [`StaticCdg`]. Segments are the unit of
//! incremental reuse — a fault set that provably cannot change a
//! destination's candidate structure lets the incremental verifier splice
//! the base segment in byte-for-byte (see `crate::incremental`).
//!
//! Deflective-recovery preallocation is modelled faithfully: message
//! types whose every chain occurrence is covered by an input-queue
//! earmark (terminating replies at their requester, return replies at
//! the servicing node) are *guaranteed ejection* — their delivery edge is
//! a sink rather than a wait on the destination queue. This is what makes
//! DR's reply network statically safe, mirroring `mdd-nic`'s
//! `can_accept`.

use crate::VerifyInput;
use mdd_deadlock::ResourceLayout;
use mdd_protocol::{
    HopTarget, IdAlloc, Message, MessageStore, MsgKind, MsgType, ShapeId, TransactionId,
};
use mdd_router::{PacketState, RouteCandidate, Routing};
use mdd_routing::Scheme;
use mdd_topology::{FaultSet, NicId, NodeId};

/// One way a resource vertex can be occupied, for witness rendering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ClassKind {
    /// A packet in a router input VC (or being injected on a local port).
    Packet {
        /// Message type of the packet.
        mtype: MsgType,
        /// Destination NIC.
        dst: NicId,
        /// Dateline-crossing mask accumulated so far (bit per dimension).
        mask: u8,
    },
    /// A chain head at an endpoint input queue awaiting MC service.
    InHead {
        /// Transaction shape the head belongs to.
        shape: ShapeId,
        /// Chain position of the head.
        pos: usize,
    },
    /// An MC service additionally awaiting the return-reply earmark slot
    /// (deflective recovery's second preallocation).
    EarmarkWait {
        /// Transaction shape being serviced.
        shape: ShapeId,
        /// Chain position being serviced.
        pos: usize,
    },
    /// A generated message at an endpoint output queue awaiting one
    /// specific injection VC.
    OutHead {
        /// Message type awaiting injection.
        mtype: MsgType,
        /// The injection VC this class waits on.
        vc: u8,
    },
}

/// An independently-built slice of the static CDG: classes with *local*
/// ids (0-based within the segment), candidate vertices in the shared
/// [`ResourceLayout`] numbering, and (local class, vertex) memberships.
///
/// Candidates and memberships are stored flat (CSR for the candidates,
/// class-sorted pairs for the memberships), per-class sorted and
/// deduplicated by [`Segment::finalize`]. Flat storage keeps the segment
/// cache allocation-light and makes [`assemble`] a pure concatenation —
/// the assembly used to clone one `Vec` per class and dominated the
/// degraded re-verdict wall time once a few hundred thousand classes were
/// live.
///
/// Equality is derived and byte-exact, which is what the incremental
/// verifier's debug cross-check leans on: a reused segment must be
/// *identical* to what a from-scratch degraded build would have produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Segment {
    /// Class descriptors, by local class id.
    pub kind: Vec<ClassKind>,
    /// Per-class unconditional-escape flag.
    pub sink: Vec<bool>,
    /// CSR offsets into `cands`, length `kind.len() + 1`.
    pub cands_off: Vec<u32>,
    /// Flat OR-wait candidate vertices, grouped by class.
    pub cands: Vec<u32>,
    /// (local class, vertex) occupancy pairs, sorted and deduplicated.
    pub membership: Vec<(u32, u32)>,
    /// Deflection-credit overlay: extra `(local class, candidate vertex)`
    /// OR-wait edges the graph gains when deflective recovery is credited
    /// (a blocked head whose subordinate is a request may instead convert
    /// into a backoff reply and wait on its output queue). Kept out of
    /// `cands` so one assembled graph serves both peels.
    pub deflection_extra: Vec<(u32, u32)>,
}

impl Default for Segment {
    fn default() -> Self {
        Segment {
            kind: Vec::new(),
            sink: Vec::new(),
            cands_off: vec![0],
            cands: Vec::new(),
            membership: Vec::new(),
            deflection_extra: Vec::new(),
        }
    }
}

/// The static CDG: occupant classes over the shared resource vertex set.
/// All per-class / per-vertex lists are CSR-flattened; use the accessor
/// methods.
#[derive(Debug)]
pub(crate) struct StaticCdg<'a> {
    pub layout: ResourceLayout,
    pub input: VerifyInput<'a>,
    /// Class descriptors (for witness notes).
    pub kind: Vec<ClassKind>,
    /// True when the class has an unconditional escape (guaranteed
    /// consumption / terminating sink): it is safe by itself.
    pub sink: Vec<bool>,
    /// CSR offsets into `cands`, length `num_classes() + 1`.
    cands_off: Vec<u32>,
    /// Flat OR-wait candidate vertices, grouped by class (deduplicated).
    cands: Vec<u32>,
    /// CSR offsets into `members`, length `num_classes() + 1`.
    members_off: Vec<u32>,
    /// Flat vertices each class can occupy (deduplicated).
    members: Vec<u32>,
    /// CSR offsets into `vclasses`, length `num_vertices() + 1`.
    vclasses_off: Vec<u32>,
    /// Flat classes that can occupy each vertex (deduplicated).
    vclasses: Vec<u32>,
    /// Deflection-credit overlay edges `(class, candidate vertex)`, in the
    /// global class numbering (see [`Segment::deflection_extra`]). The
    /// credited peel is the base peel with these OR-wait edges added.
    pub deflection_extra: Vec<(u32, u32)>,
}

impl StaticCdg<'_> {
    /// Number of occupant classes.
    pub fn num_classes(&self) -> usize {
        self.kind.len()
    }

    /// Number of resource vertices.
    pub fn num_vertices(&self) -> usize {
        self.vclasses_off.len() - 1
    }

    /// OR-wait candidate vertices of `class`.
    pub fn cands(&self, class: u32) -> &[u32] {
        let (a, b) = (self.cands_off[class as usize], self.cands_off[class as usize + 1]);
        &self.cands[a as usize..b as usize]
    }

    /// Vertices `class` can occupy.
    pub fn members(&self, class: u32) -> &[u32] {
        let (a, b) = (self.members_off[class as usize], self.members_off[class as usize + 1]);
        &self.members[a as usize..b as usize]
    }

    /// Classes that can occupy `vertex`.
    pub fn classes_at(&self, vertex: u32) -> &[u32] {
        let (a, b) = (
            self.vclasses_off[vertex as usize],
            self.vclasses_off[vertex as usize + 1],
        );
        &self.vclasses[a as usize..b as usize]
    }
}

impl StaticCdg<'_> {
    /// Witness note for one class: the blocked occupant, in the mnemonic
    /// vocabulary of the protocol spec.
    pub fn note(&self, class: u32) -> String {
        let proto = self.input.pattern.protocol();
        match self.kind[class as usize] {
            ClassKind::Packet { mtype, dst, mask } => {
                let name = proto.spec(mtype).name;
                if mask == 0 {
                    format!("{name} to nic {}", dst.index())
                } else {
                    format!("{name} to nic {} (crossed dateline)", dst.index())
                }
            }
            ClassKind::InHead { shape, pos } => {
                let s = self.input.pattern.shape(shape);
                let head = proto.spec(s.mtype(pos)).name;
                let sub = proto.spec(s.mtype(pos + 1)).name;
                format!("head {head} -> {sub}")
            }
            ClassKind::EarmarkWait { shape, pos } => {
                let s = self.input.pattern.shape(shape);
                let head = proto.spec(s.mtype(pos)).name;
                let ret = proto.spec(s.mtype(pos + 2)).name;
                format!("{head} service awaiting {ret} earmark")
            }
            ClassKind::OutHead { mtype, vc } => {
                format!("{} awaiting injection vc {vc}", proto.spec(mtype).name)
            }
        }
    }
}

/// Message types under deflective recovery whose delivery is guaranteed
/// by input-queue earmarks (see `mdd-nic::Nic::can_accept`): the backoff
/// type sinks unconditionally; a terminating reply claims the slot
/// preallocated at request issue provided every chain occurrence is
/// delivered to the requester; a non-terminating reply claims the slot
/// preallocated at its grandparent's service provided it returns to the
/// servicing node.
pub(crate) fn guaranteed_ejection(input: &VerifyInput<'_>) -> Vec<bool> {
    let proto = input.pattern.protocol();
    let n = proto.num_types();
    let mut out = vec![false; n];
    if !matches!(input.scheme, Scheme::DeflectiveRecovery) {
        return out;
    }
    for t in proto.msg_types() {
        if Some(t) == proto.backoff_type() {
            out[t.index()] = true;
            continue;
        }
        let mut occurs = false;
        let mut covered = true;
        for sid in active_shapes(input) {
            let shape = input.pattern.shape(sid);
            for pos in 0..shape.len() {
                if shape.mtype(pos) != t {
                    continue;
                }
                occurs = true;
                let ok = if proto.is_terminating(t) {
                    shape.target(pos) == HopTarget::Requester
                } else {
                    proto.kind(t) == MsgKind::Reply
                        && pos >= 2
                        && shape.target(pos) == shape.target(pos - 2)
                };
                covered &= ok;
            }
        }
        out[t.index()] = occurs && covered;
    }
    out
}

/// Shape ids with positive workload weight.
fn active_shapes<'i>(input: &VerifyInput<'i>) -> impl Iterator<Item = ShapeId> + 'i {
    let pattern = input.pattern;
    (0..pattern.num_shapes())
        .map(|i| ShapeId(i as u16))
        .filter(move |&sid| pattern.weight(sid) > 0.0)
}

/// Message types that can appear in the network: every type of an active
/// chain, plus — under deflective recovery only — the backoff type (it is
/// generated exclusively by deflection, so including it under SA/PR would
/// fabricate dependencies that cannot occur).
pub(crate) fn net_types(input: &VerifyInput<'_>) -> Vec<MsgType> {
    let proto = input.pattern.protocol();
    let mut types: Vec<MsgType> = Vec::new();
    for sid in active_shapes(input) {
        let shape = input.pattern.shape(sid);
        for pos in 0..shape.len() {
            let t = shape.mtype(pos);
            if !types.contains(&t) {
                types.push(t);
            }
        }
    }
    if matches!(input.scheme, Scheme::DeflectiveRecovery) {
        if let Some(b) = proto.backoff_type() {
            if !types.contains(&b) {
                types.push(b);
            }
        }
    }
    types
}

/// A scratch message store so the routing trait can be driven without a
/// simulator: only the packet-state fields matter.
fn scratch_packet(t: MsgType) -> (MessageStore, PacketState) {
    let mut store = MessageStore::new();
    let mut ids = IdAlloc::new();
    let scratch = store.insert(Message {
        id: ids.next_msg(),
        txn: TransactionId(0),
        mtype: MsgType(0),
        shape: ShapeId(0),
        chain_pos: 0,
        src: NicId(0),
        dst: NicId(0),
        requester: NicId(0),
        home: NicId(0),
        owner: NicId(0),
        length_flits: 1,
        created: 0,
        is_backoff: false,
        rescued: false,
        sharers: 0,
    });
    let pkt = PacketState {
        msg: scratch,
        mtype: t,
        src: NicId(0),
        dst: NicId(0),
        dst_router: NodeId(0),
        crossed_dateline: 0,
        injected_at: 0,
    };
    (store, pkt)
}

/// Router-VC classes for one (message type, destination NIC): the BFS per
/// `(router, dateline mask)` state driving `routing`'s real candidate
/// function. `routing` is the scheme's base function for a pristine
/// analysis, or a fault-steered `DegradedRouting` for a degraded one.
///
/// Under faults, endpoints on failed routers neither generate nor receive
/// traffic: a destination on a failed router yields an empty segment, and
/// sources on failed routers are not seeded. A reachable state whose
/// candidate set comes back *empty* (stranded mid-route by the fault set)
/// is kept as a non-sink class with no candidates — the classifier turns
/// it into an `Unsafe` verdict.
#[allow(clippy::too_many_arguments)]
pub(crate) fn packet_segment(
    input: &VerifyInput<'_>,
    routing: &dyn Routing,
    layout: &ResourceLayout,
    t: MsgType,
    dst: NicId,
    guaranteed_t: bool,
    faults: Option<&FaultSet>,
    size_hint: Option<&Segment>,
) -> Segment {
    let topo = input.topo;
    let proto = input.pattern.protocol();
    assert!(topo.dims() <= 8, "dateline masks are one bit per dimension");
    let qi = input.queue_org.queue_index(proto, t);
    let dst_router = topo.nic_router(dst);
    let mut seg = Segment::default();
    if faults.is_some_and(|f| f.router_down(dst_router)) {
        return seg;
    }
    // A degraded rebuild lands within a few classes of the base segment
    // it replaces; reserving the base's sizes up front removes the growth
    // reallocations that otherwise dominate a full-sweep rebuild.
    if let Some(h) = size_hint {
        seg.kind.reserve(h.kind.len() + 8);
        seg.sink.reserve(h.sink.len() + 8);
        seg.membership.reserve(h.membership.len() + 16);
    }

    let (_store, mut pkt) = scratch_packet(t);
    let mut inj_buf: Vec<u8> = Vec::new();
    routing.injection_vcs(&pkt, &mut inj_buf);
    pkt.dst = dst;
    pkt.dst_router = dst_router;

    let nr = topo.num_routers() as usize;
    // When the routing function can never consult the dateline mask for
    // this type (no multi-class escape set: PR's fully adaptive map, any
    // mesh map), states differing only in mask have identical candidate
    // structure — fold them into one class instead of sweeping `2^dims`
    // copies of every router.
    let masks = if routing.dateline_sensitive(t) {
        1usize << topo.dims()
    } else {
        1
    };
    let mut state_class: Vec<u32> = vec![u32::MAX; nr * masks];
    let mut stack: Vec<(NodeId, u8)> = Vec::new();
    let mut rc_buf: Vec<RouteCandidate> = Vec::new();
    let mut cand_pairs: Vec<(u32, u32)> =
        Vec::with_capacity(size_hint.map_or(0, |h| h.cands.len() + 16));

    // Seed: injections from every other endpoint, occupying the
    // local-port VCs the routing function admits at injection.
    for src in topo.nics() {
        if src == dst {
            continue;
        }
        let r = topo.nic_router(src);
        if faults.is_some_and(|f| f.router_down(r)) {
            continue;
        }
        let c = intern_state(&mut state_class, &mut stack, &mut seg, masks, r, 0, t, dst);
        let lp = topo.local_port(topo.nic_local_index(src));
        for &v in &inj_buf {
            seg.membership.push((c, layout.vc_vertex(r, lp, v)));
        }
    }

    while let Some((node, mask)) = stack.pop() {
        let c = state_class[node.index() * masks + mask as usize];
        pkt.crossed_dateline = mask;
        rc_buf.clear();
        routing.candidates(topo, node, &pkt, 0, &mut rc_buf);
        for rc in &rc_buf {
            match topo.port_dim_dir(rc.port) {
                Some((d, dir)) => {
                    let down = topo.neighbor(node, d, dir).expect("link exists");
                    let dport = topo.port(d, dir.opposite());
                    let mask2 = if masks > 1 && topo.crosses_dateline(node, d, dir) {
                        mask | (1 << d)
                    } else {
                        mask
                    };
                    let vtx = layout.vc_vertex(down, dport, rc.vc);
                    cand_pairs.push((c, vtx));
                    let c2 = intern_state(
                        &mut state_class,
                        &mut stack,
                        &mut seg,
                        masks,
                        down,
                        mask2,
                        t,
                        dst,
                    );
                    seg.membership.push((c2, vtx));
                }
                None => {
                    // Ejection at the destination router: either
                    // consumption is guaranteed by an earmark (sink) or
                    // the packet waits on the destination input queue.
                    if guaranteed_t {
                        seg.sink[c as usize] = true;
                    } else {
                        cand_pairs.push((c, layout.in_queue_vertex(dst, qi)));
                    }
                }
            }
        }
    }
    seg.finalize(cand_pairs);
    seg
}

/// Endpoint classes: the paper's `≺` edges (chain heads in input queues
/// waiting on their subordinate's output queue, plus DR's earmark
/// AND-waits) followed by output-queue injection waits. Endpoints on
/// failed routers are skipped — they neither serve nor generate traffic.
/// Deflective recovery's credit edges are returned alongside as the
/// segment's `deflection_extra` overlay rather than baked into `cands`.
pub(crate) fn endpoint_segment(
    input: &VerifyInput<'_>,
    layout: &ResourceLayout,
    faults: Option<&FaultSet>,
) -> Segment {
    let topo = input.topo;
    let proto = input.pattern.protocol();
    let org = input.queue_org;
    let dr = matches!(input.scheme, Scheme::DeflectiveRecovery);
    let bkf = proto.backoff_type();
    let mut seg = Segment::default();
    let mut cand_pairs: Vec<(u32, u32)> = Vec::new();
    let nic_down =
        |nic: NicId| faults.is_some_and(|f| f.router_down(topo.nic_router(nic)));

    // --- Endpoint input-queue classes. A non-terminating, non-final head
    // --- waits on its subordinate's output queue; terminating heads sink
    // --- (no class needed).
    for sid in active_shapes(input) {
        let shape = input.pattern.shape(sid);
        for pos in 0..shape.len() {
            let t = shape.mtype(pos);
            if proto.is_terminating(t) || shape.is_last(pos) {
                continue;
            }
            let sub = shape.mtype(pos + 1);
            let qi = org.queue_index(proto, t);
            let sub_q = org.queue_index(proto, sub);
            let deflectable = dr && proto.kind(sub) == MsgKind::Request;
            for nic in topo.nics() {
                if nic_down(nic) {
                    continue;
                }
                let vtx = layout.in_queue_vertex(nic, qi);
                let c = seg.push_class(ClassKind::InHead { shape: sid, pos });
                cand_pairs.push((c, layout.out_queue_vertex(nic, sub_q)));
                if deflectable {
                    if let Some(b) = bkf {
                        seg.deflection_extra
                            .push((c, layout.out_queue_vertex(nic, org.queue_index(proto, b))));
                    }
                }
                seg.membership.push((c, vtx));
                // Deflective recovery's return-reply earmark: servicing
                // additionally needs a preallocatable slot in the return
                // reply's own input queue (an AND-wait, hence a second
                // class on the same vertex).
                if dr && pos + 2 < shape.len() {
                    let ret_q = org.queue_index(proto, shape.mtype(pos + 2));
                    let c2 = seg.push_class(ClassKind::EarmarkWait { shape: sid, pos });
                    cand_pairs.push((c2, layout.in_queue_vertex(nic, ret_q)));
                    seg.membership.push((c2, vtx));
                }
            }
        }
    }

    // --- Endpoint output-queue classes: a generated message awaits
    // --- injection. One class per admissible injection VC (AND-composed:
    // --- packetization may bind any one of them, so the queue is only
    // --- guaranteed to drain when each admissible channel drains).
    let mut inj_buf: Vec<u8> = Vec::new();
    for t in net_types(input) {
        let (_store, pkt) = scratch_packet(t);
        inj_buf.clear();
        input.routing.injection_vcs(&pkt, &mut inj_buf);
        let oq = org.queue_index(proto, t);
        for nic in topo.nics() {
            if nic_down(nic) {
                continue;
            }
            let r = topo.nic_router(nic);
            let lp = topo.local_port(topo.nic_local_index(nic));
            let vtx = layout.out_queue_vertex(nic, oq);
            for &v in &inj_buf {
                let c = seg.push_class(ClassKind::OutHead { mtype: t, vc: v });
                cand_pairs.push((c, layout.vc_vertex(r, lp, v)));
                seg.membership.push((c, vtx));
            }
        }
    }
    seg.finalize(cand_pairs);
    seg
}

/// Concatenate segments (local class ids shifted onto one global
/// numbering, in segment order) and finalize the dedicated occupancy
/// indexes. The result is identical to building the whole graph in one
/// pass as long as the segments are supplied in the canonical order:
/// packet segments type-major/destination-minor, then the endpoint
/// segment.
pub(crate) fn assemble<'a, 'i>(
    input: &VerifyInput<'a>,
    segments: impl IntoIterator<Item = &'i Segment>,
) -> StaticCdg<'a> {
    let layout = crate::layout_for(input);
    let nv = layout.num_vertices();
    let segments: Vec<&Segment> = segments.into_iter().collect();
    let total_classes: usize = segments.iter().map(|s| s.kind.len()).sum();
    let total_cands: usize = segments.iter().map(|s| s.cands.len()).sum();
    let total_members: usize = segments.iter().map(|s| s.membership.len()).sum();
    let mut kind: Vec<ClassKind> = Vec::with_capacity(total_classes);
    let mut sink: Vec<bool> = Vec::with_capacity(total_classes);
    let mut cands_off: Vec<u32> = Vec::with_capacity(total_classes + 1);
    cands_off.push(0);
    let mut cands: Vec<u32> = Vec::with_capacity(total_cands);
    let mut membership: Vec<(u32, u32)> = Vec::with_capacity(total_members);
    let mut deflection_extra: Vec<(u32, u32)> = Vec::new();
    for seg in segments {
        let off = kind.len() as u32;
        kind.extend_from_slice(&seg.kind);
        sink.extend_from_slice(&seg.sink);
        let cbase = *cands_off.last().expect("offsets start at 0");
        cands_off.extend(seg.cands_off[1..].iter().map(|&o| cbase + o));
        cands.extend_from_slice(&seg.cands);
        // Finalized segments carry sorted, deduplicated memberships, and
        // class ids are disjoint across segments, so plain concatenation
        // with the offset shift keeps the global pair list class-major
        // sorted with no duplicates.
        membership.extend(seg.membership.iter().map(|&(c, v)| (off + c, v)));
        deflection_extra.extend(seg.deflection_extra.iter().map(|&(c, v)| (off + c, v)));
    }
    debug_assert!(membership.windows(2).all(|w| w[0] < w[1]));
    let mut members_off: Vec<u32> = vec![0; kind.len() + 1];
    for &(c, _) in &membership {
        members_off[c as usize + 1] += 1;
    }
    for i in 1..members_off.len() {
        members_off[i] += members_off[i - 1];
    }
    let members: Vec<u32> = membership.iter().map(|&(_, v)| v).collect();
    let mut vclasses_off: Vec<u32> = vec![0; nv + 1];
    for &(_, v) in &membership {
        vclasses_off[v as usize + 1] += 1;
    }
    for i in 1..vclasses_off.len() {
        vclasses_off[i] += vclasses_off[i - 1];
    }
    // Filling in pair order (class-ascending) leaves each vertex's class
    // list sorted, matching the per-class candidate ordering above.
    let mut fill = vclasses_off.clone();
    let mut vclasses: Vec<u32> = vec![0; membership.len()];
    for &(c, v) in &membership {
        vclasses[fill[v as usize] as usize] = c;
        fill[v as usize] += 1;
    }
    StaticCdg {
        layout,
        input: *input,
        kind,
        sink,
        cands_off,
        cands,
        members_off,
        members,
        vclasses_off,
        vclasses,
        deflection_extra,
    }
}

/// Derive the packet segment of message type `to_t` from the segment of a
/// *routing-interchangeable* type for the same destination: identical
/// `TypeVcs` (so the BFS visits the same states and emits the same
/// candidate VCs) and identical guaranteed-ejection status. The derived
/// segment differs from `seg` only in the type recorded in its class
/// descriptors and — when `eject` is `Some((old, new))` — in the
/// destination input-queue vertex its ejection classes wait on. The
/// incremental verifier uses this to skip the second BFS per destination
/// under PR's uniform fully adaptive map; `verify_faulted` never does, so
/// the debug cross-checks validate every derivation against an honest
/// from-scratch build.
pub(crate) fn retype_segment(seg: &Segment, to_t: MsgType, eject: Option<(u32, u32)>) -> Segment {
    let mut out = seg.clone();
    for k in &mut out.kind {
        if let ClassKind::Packet { mtype, .. } = k {
            *mtype = to_t;
        }
    }
    if let Some((old_ej, new_ej)) = eject {
        if old_ej != new_ej {
            for c in 0..out.kind.len() {
                let (a, b) = (out.cands_off[c] as usize, out.cands_off[c + 1] as usize);
                let range = &mut out.cands[a..b];
                if let Some(slot) = range.iter_mut().find(|v| **v == old_ej) {
                    *slot = new_ej;
                    // Queue vertices never collide with VC vertices, so
                    // re-sorting restores the per-class invariant without
                    // introducing duplicates.
                    range.sort_unstable();
                }
            }
        }
    }
    out
}

impl Segment {
    fn push_class(&mut self, k: ClassKind) -> u32 {
        let id = self.kind.len() as u32;
        self.kind.push(k);
        self.sink.push(false);
        id
    }

    /// Build the candidate CSR from the `(class, vertex)` pairs
    /// accumulated during construction and sort/dedup the membership.
    /// Called exactly once, after the last class is pushed.
    fn finalize(&mut self, mut cand_pairs: Vec<(u32, u32)>) {
        cand_pairs.sort_unstable();
        cand_pairs.dedup();
        self.cands_off = vec![0; self.kind.len() + 1];
        for &(c, _) in &cand_pairs {
            self.cands_off[c as usize + 1] += 1;
        }
        for i in 1..self.cands_off.len() {
            self.cands_off[i] += self.cands_off[i - 1];
        }
        self.cands = cand_pairs.into_iter().map(|(_, v)| v).collect();
        self.membership.sort_unstable();
        self.membership.dedup();
    }
}

/// Get-or-create the packet class for BFS state `(node, mask)`; newly
/// created states are pushed on the BFS stack.
#[allow(clippy::too_many_arguments)]
fn intern_state(
    state_class: &mut [u32],
    stack: &mut Vec<(NodeId, u8)>,
    seg: &mut Segment,
    masks: usize,
    node: NodeId,
    mask: u8,
    mtype: MsgType,
    dst: NicId,
) -> u32 {
    let slot = node.index() * masks + mask as usize;
    if state_class[slot] == u32::MAX {
        let c = seg.push_class(ClassKind::Packet { mtype, dst, mask });
        state_class[slot] = c;
        stack.push((node, mask));
    }
    state_class[slot]
}
