//! Escape peeling and witness extraction over the static CDG.
//!
//! The peel is a least-fixpoint computation of Duato's sufficient
//! condition generalized to occupant classes: a class is *safe* when it
//! sinks unconditionally or any of its OR-wait candidate vertices is
//! safe; a vertex is safe when every class that can occupy it is safe
//! (vacuously, when nothing can occupy it). Safety only ever grows, so a
//! worklist over per-vertex unsafe-class counts reaches the fixpoint in
//! time linear in the graph. If every vertex ends safe, no reachable
//! placement of occupants can sustain a cyclic wait — the configuration
//! is proven deadlock-free. Anything left over necessarily contains a
//! dependency cycle, which [`witness`] extracts via the Tarjan SCC
//! machinery shared with the runtime detector.

use crate::cdg::StaticCdg;
use crate::CycleWitness;
use mdd_deadlock::WaitForGraph;

/// Fixpoint result of one peel pass.
pub(crate) struct PeelOutcome {
    /// Per-vertex safety (drains under every reachable occupancy).
    pub vertex_safe: Vec<bool>,
    /// Per-class safety.
    pub class_safe: Vec<bool>,
    /// True when every vertex peeled: deadlock freedom is proven.
    pub all_safe: bool,
}

/// Run the escape-peel fixpoint over `cdg`.
pub(crate) fn peel(cdg: &StaticCdg<'_>) -> PeelOutcome {
    let nv = cdg.vertex_classes.len();
    let nc = cdg.kind.len();

    // Reverse index: candidate vertex -> classes OR-waiting on it.
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); nv];
    for (c, cs) in cdg.cands.iter().enumerate() {
        for &v in cs {
            rev[v as usize].push(c as u32);
        }
    }

    let mut class_safe = cdg.sink.clone();
    let mut remaining: Vec<u32> = cdg
        .vertex_classes
        .iter()
        .map(|cs| cs.len() as u32)
        .collect();
    let mut vertex_safe = vec![false; nv];

    // Seed the worklists: sink classes, and vertices nothing can occupy.
    let mut cwork: Vec<u32> = (0..nc as u32).filter(|&c| class_safe[c as usize]).collect();
    let mut vwork: Vec<u32> = Vec::new();
    for v in 0..nv {
        if remaining[v] == 0 {
            vertex_safe[v] = true;
            vwork.push(v as u32);
        }
    }

    loop {
        while let Some(c) = cwork.pop() {
            for &m in &cdg.members[c as usize] {
                let m = m as usize;
                remaining[m] -= 1;
                if remaining[m] == 0 {
                    vertex_safe[m] = true;
                    vwork.push(m as u32);
                }
            }
        }
        match vwork.pop() {
            None => break,
            Some(v) => {
                for &c in &rev[v as usize] {
                    if !class_safe[c as usize] {
                        class_safe[c as usize] = true;
                        cwork.push(c);
                    }
                }
            }
        }
    }

    let all_safe = vertex_safe.iter().all(|&s| s);
    PeelOutcome {
        vertex_safe,
        class_safe,
        all_safe,
    }
}

/// Extract a minimal cycle witness from the unsafe residue of `outcome`.
///
/// The residual graph keeps only unsafe vertices; each unsafe class
/// contributes arcs from every vertex it can occupy to each of its (still
/// unsafe) candidates. The first cyclic SCC yields a simple cycle, which
/// is rendered through the shared [`ResourceLayout`] trace format with
/// one occupant note per resource.
pub(crate) fn witness(cdg: &StaticCdg<'_>, outcome: &PeelOutcome) -> Option<CycleWitness> {
    let nv = cdg.vertex_classes.len();
    let mut g = WaitForGraph::new(nv);
    for v in 0..nv {
        if outcome.vertex_safe[v] {
            continue;
        }
        for &c in &cdg.vertex_classes[v] {
            if outcome.class_safe[c as usize] {
                continue;
            }
            for &w in &cdg.cands[c as usize] {
                if !outcome.vertex_safe[w as usize] {
                    g.add_edge(v as u32, w);
                }
            }
        }
    }

    for comp in g.sccs() {
        let cycle = g.cycle_in_component(&comp);
        if cycle.is_empty() {
            continue;
        }
        let notes: Vec<String> = cycle
            .iter()
            .map(|&v| {
                cdg.vertex_classes[v as usize]
                    .iter()
                    .find(|&&c| !outcome.class_safe[c as usize])
                    .map_or_else(String::new, |&c| cdg.note(c))
            })
            .collect();
        let rendered = cdg.layout.format_cycle(&cycle, &notes);
        return Some(CycleWitness {
            vertices: cycle,
            rendered,
        });
    }
    None
}
