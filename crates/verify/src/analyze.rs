//! Escape peeling and witness extraction over the static CDG.
//!
//! The peel is a least-fixpoint computation of Duato's sufficient
//! condition generalized to occupant classes: a class is *safe* when it
//! sinks unconditionally or any of its OR-wait candidate vertices is
//! safe; a vertex is safe when every class that can occupy it is safe
//! (vacuously, when nothing can occupy it). Safety only ever grows, so a
//! worklist over per-vertex unsafe-class counts reaches the fixpoint in
//! time linear in the graph. If every vertex ends safe, no reachable
//! placement of occupants can sustain a cyclic wait — the configuration
//! is proven deadlock-free. Anything left over necessarily contains a
//! dependency cycle, which [`witness`] extracts via the Tarjan SCC
//! machinery shared with the runtime detector.

use crate::cdg::StaticCdg;
use crate::CycleWitness;
use mdd_deadlock::WaitForGraph;

/// Fixpoint result of one peel pass.
pub(crate) struct PeelOutcome {
    /// Per-vertex safety (drains under every reachable occupancy).
    pub vertex_safe: Vec<bool>,
    /// Per-class safety.
    pub class_safe: Vec<bool>,
    /// True when every vertex peeled: deadlock freedom is proven.
    pub all_safe: bool,
}

/// Run the escape-peel fixpoint over `cdg`.
pub(crate) fn peel(cdg: &StaticCdg<'_>) -> PeelOutcome {
    peel_with(cdg, &[])
}

/// Run the peel with extra OR-wait candidate edges `(class, vertex)`
/// overlaid on the graph — the deflection-credited pass reuses the one
/// assembled graph this way instead of assembling a second copy.
pub(crate) fn peel_with(cdg: &StaticCdg<'_>, extra: &[(u32, u32)]) -> PeelOutcome {
    let nv = cdg.num_vertices();
    let nc = cdg.num_classes();

    // Reverse index (CSR): candidate vertex -> classes OR-waiting on it.
    let mut rev_off: Vec<u32> = vec![0; nv + 1];
    for c in 0..nc as u32 {
        for &v in cdg.cands(c) {
            rev_off[v as usize + 1] += 1;
        }
    }
    for &(_, v) in extra {
        rev_off[v as usize + 1] += 1;
    }
    for i in 1..rev_off.len() {
        rev_off[i] += rev_off[i - 1];
    }
    let mut fill = rev_off.clone();
    let mut rev: Vec<u32> = vec![0; rev_off[nv] as usize];
    for c in 0..nc as u32 {
        for &v in cdg.cands(c) {
            rev[fill[v as usize] as usize] = c;
            fill[v as usize] += 1;
        }
    }
    for &(c, v) in extra {
        rev[fill[v as usize] as usize] = c;
        fill[v as usize] += 1;
    }

    let mut class_safe = cdg.sink.clone();
    let mut remaining: Vec<u32> = (0..nv)
        .map(|v| cdg.classes_at(v as u32).len() as u32)
        .collect();
    let mut vertex_safe = vec![false; nv];

    // Seed the worklists: sink classes, and vertices nothing can occupy.
    let mut cwork: Vec<u32> = (0..nc as u32).filter(|&c| class_safe[c as usize]).collect();
    let mut vwork: Vec<u32> = Vec::new();
    for v in 0..nv {
        if remaining[v] == 0 {
            vertex_safe[v] = true;
            vwork.push(v as u32);
        }
    }

    loop {
        while let Some(c) = cwork.pop() {
            for &m in cdg.members(c) {
                let m = m as usize;
                remaining[m] -= 1;
                if remaining[m] == 0 {
                    vertex_safe[m] = true;
                    vwork.push(m as u32);
                }
            }
        }
        match vwork.pop() {
            None => break,
            Some(v) => {
                let (a, b) = (rev_off[v as usize], rev_off[v as usize + 1]);
                for &c in &rev[a as usize..b as usize] {
                    if !class_safe[c as usize] {
                        class_safe[c as usize] = true;
                        cwork.push(c);
                    }
                }
            }
        }
    }

    let all_safe = vertex_safe.iter().all(|&s| s);
    PeelOutcome {
        vertex_safe,
        class_safe,
        all_safe,
    }
}

/// Extract a minimal cycle witness from the unsafe residue of `outcome`.
///
/// The residual graph keeps only unsafe vertices; each unsafe class
/// contributes arcs from every vertex it can occupy to each of its (still
/// unsafe) candidates. The first cyclic SCC yields a simple cycle, which
/// is rendered through the shared [`ResourceLayout`] trace format with
/// one occupant note per resource.
pub(crate) fn witness(cdg: &StaticCdg<'_>, outcome: &PeelOutcome) -> Option<CycleWitness> {
    witness_with(cdg, outcome, &[])
}

/// Witness extraction over the residue of [`peel_with`]: the same extra
/// OR-wait edges must shape the residual graph, or the cycle shown could
/// be one the overlaid peel already discharged.
pub(crate) fn witness_with(
    cdg: &StaticCdg<'_>,
    outcome: &PeelOutcome,
    extra: &[(u32, u32)],
) -> Option<CycleWitness> {
    let nv = cdg.num_vertices();
    let mut g = WaitForGraph::new(nv);
    for v in 0..nv {
        if outcome.vertex_safe[v] {
            continue;
        }
        for &c in cdg.classes_at(v as u32) {
            if outcome.class_safe[c as usize] {
                continue;
            }
            for &w in cdg.cands(c) {
                if !outcome.vertex_safe[w as usize] {
                    g.add_edge(v as u32, w);
                }
            }
        }
    }
    for &(c, w) in extra {
        if outcome.class_safe[c as usize] || outcome.vertex_safe[w as usize] {
            continue;
        }
        for &v in cdg.members(c) {
            if !outcome.vertex_safe[v as usize] {
                g.add_edge(v, w);
            }
        }
    }

    for comp in g.sccs() {
        let cycle = g.cycle_in_component(&comp);
        if cycle.is_empty() {
            continue;
        }
        let notes: Vec<String> = cycle
            .iter()
            .map(|&v| {
                cdg.classes_at(v)
                    .iter()
                    .find(|&&c| !outcome.class_safe[c as usize])
                    .map_or_else(String::new, |&c| cdg.note(c))
            })
            .collect();
        let rendered = cdg.layout.format_cycle(&cycle, &notes);
        return Some(CycleWitness {
            vertices: cycle,
            rendered,
        });
    }
    None
}
