//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon)
//! data-parallelism crate.
//!
//! The workspace builds with no network access, so this crate provides
//! the one rayon idiom the simulator uses — `slice.par_iter().map(f)
//! .collect::<Vec<_>>()` — with the same names and the same semantics
//! (results in input order), implemented over scoped [`std::thread`]
//! workers pulling indices from a shared atomic cursor. Load sweeps are
//! embarrassingly parallel with per-point runtimes that vary by an order
//! of magnitude across loads, so dynamic work stealing via the shared
//! cursor matters and a static chunking would not do.
//!
//! ```
//! use rayon::prelude::*;
//!
//! let squares: Vec<u64> = [1u64, 2, 3, 4].par_iter().map(|&x| x * x).collect();
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![warn(missing_docs)]

/// The user-facing traits and adapters, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Conversion of `&self` into a parallel iterator (the `par_iter` entry
/// point).
pub trait IntoParallelRefIterator<'a> {
    /// The element type yielded by reference.
    type Item: Sync + 'a;
    /// Create the parallel iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<T> core::fmt::Debug for ParIter<'_, T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ParIter").field("len", &self.items.len()).finish()
    }
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each element through `f`, in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The mapped parallel iterator; consumed by [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<T, F> core::fmt::Debug for ParMap<'_, T, F> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ParMap").field("len", &self.items.len()).finish()
    }
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Run the map across worker threads and collect the results in
    /// input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        run_indexed(self.items.len(), |i| (self.f)(&self.items[i]))
            .into_iter()
            .collect()
    }
}

/// Global worker-count override installed by [`ThreadPoolBuilder::build_global`]
/// (0 = unset).
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Mirror of rayon's `ThreadPoolBuilder` for the one use the workspace
/// has: capping global parallelism (`--jobs` in the bench binaries).
///
/// ```
/// rayon::ThreadPoolBuilder::new().num_threads(2).build_global().unwrap();
/// # rayon::ThreadPoolBuilder::new().num_threads(0).build_global().unwrap();
/// ```
#[derive(Default, Debug)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default (machine-sized) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Use at most `n` worker threads; `0` restores the default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install the setting process-globally. Unlike upstream rayon the
    /// shim has no persistent pool, so repeated calls simply replace the
    /// cap and never fail.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        MAX_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Error type of [`ThreadPoolBuilder::build_global`] (never produced by
/// the shim; present for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool already initialized")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Degree of parallelism: the `build_global` cap if set, else the
/// `RAYON_NUM_THREADS` environment variable (as upstream rayon), else the
/// machine's logical CPUs (at least 1).
fn workers(n_items: usize) -> usize {
    let configured = match MAX_THREADS.load(Ordering::Relaxed) {
        0 => std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0),
        n => Some(n),
    };
    configured
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get)
        })
        .min(n_items.max(1))
}

/// Evaluate `f(0..n)` with dynamic scheduling and return the results in
/// index order.
fn run_indexed<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let nw = workers(n);
    if nw <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..nw {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("every index was processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u32> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x as u64 * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x as u64 * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = Vec::new();
        let out: Vec<u32> = none.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [5u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still all complete and land in
        // order (exercises the dynamic cursor).
        let xs: Vec<usize> = (0..64).collect();
        let ys: Vec<usize> = xs
            .par_iter()
            .map(|&x| {
                let mut acc = 0usize;
                for i in 0..(x * 1000) {
                    acc = acc.wrapping_add(i);
                }
                let _ = acc;
                x
            })
            .collect();
        assert_eq!(ys, xs);
    }
}
