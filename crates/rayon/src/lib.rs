//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon)
//! data-parallelism crate — now backed by a real work-stealing pool.
//!
//! The workspace builds with no network access, so this crate provides
//! the two rayon idioms the simulator uses with the same names and the
//! same semantics:
//!
//! * `slice.par_iter().map(f).collect::<Vec<_>>()` — an order-preserving
//!   parallel map over borrowed data, run on scoped threads;
//! * [`ThreadPool`] / [`ThreadPoolBuilder`] — a persistent pool of
//!   worker threads accepting `'static` tasks via [`ThreadPool::spawn`],
//!   the substrate of the `mdd-engine` streaming scheduler and the
//!   `mddsimd` sweep service.
//!
//! Both are built on one scheduling design: **per-worker deques plus a
//! global injector**. External submissions land in the injector; a
//! worker prefers the back of its own deque (LIFO, cache-warm), then the
//! front of the injector (FIFO, fair), then steals from the front of a
//! sibling's deque. Load sweeps are embarrassingly parallel with
//! per-point runtimes that vary by an order of magnitude across loads,
//! so dynamic stealing matters and static chunking would not do.
//!
//! ```
//! use rayon::prelude::*;
//!
//! let squares: Vec<u64> = [1u64, 2, 3, 4].par_iter().map(|&x| x * x).collect();
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```
//!
//! ```
//! let pool = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
//! let (tx, rx) = std::sync::mpsc::channel();
//! for i in 0..8u32 {
//!     let tx = tx.clone();
//!     pool.spawn(move || tx.send(i * i).unwrap());
//! }
//! drop(tx);
//! let mut got: Vec<u32> = rx.iter().collect();
//! got.sort_unstable();
//! assert_eq!(got, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![warn(missing_docs)]

/// The user-facing traits and adapters, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Work-stealing queues
// ---------------------------------------------------------------------------

/// The shared scheduling state of one stealing domain: a global injector
/// queue plus one deque per worker. Owners push/pop the *back* of their
/// own deque; thieves (and injector consumers) take from the *front*, so
/// an owner and a thief contend on opposite ends and large work items
/// seeded early are stolen first.
struct StealQueues<T> {
    injector: Mutex<VecDeque<T>>,
    locals: Vec<Mutex<VecDeque<T>>>,
    /// Signalled on every push; workers park here when every queue is dry.
    work_cv: Condvar,
    /// Items currently sitting in the injector or a local deque.
    queued: AtomicUsize,
    /// Successful steals from a sibling's deque (not the injector).
    steals: AtomicU64,
}

impl<T> StealQueues<T> {
    fn new(workers: usize) -> Self {
        StealQueues {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            work_cv: Condvar::new(),
            queued: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
        }
    }

    /// Push external work onto the global injector and wake a sleeper.
    fn push_global(&self, item: T) {
        self.queued.fetch_add(1, Ordering::Relaxed);
        self.injector.lock().expect("injector poisoned").push_back(item);
        self.work_cv.notify_one();
    }

    /// Push onto worker `w`'s own deque (splits, nested spawns) and wake a
    /// sleeper so the freshly exposed work can be stolen.
    fn push_local(&self, w: usize, item: T) {
        self.queued.fetch_add(1, Ordering::Relaxed);
        self.locals[w].lock().expect("local deque poisoned").push_back(item);
        self.work_cv.notify_one();
    }

    /// Take the next item for worker `w`: own deque (back) → injector
    /// (front) → steal from siblings (front), scanned from `w + 1` so
    /// victims rotate instead of everybody mobbing worker 0.
    fn take(&self, w: usize) -> Option<T> {
        if let Some(t) = self.locals[w].lock().expect("local deque poisoned").pop_back() {
            self.queued.fetch_sub(1, Ordering::Relaxed);
            return Some(t);
        }
        if let Some(t) = self.injector.lock().expect("injector poisoned").pop_front() {
            self.queued.fetch_sub(1, Ordering::Relaxed);
            return Some(t);
        }
        let n = self.locals.len();
        for i in 1..n {
            let victim = (w + i) % n;
            if let Some(t) = self.locals[victim]
                .lock()
                .expect("local deque poisoned")
                .pop_front()
            {
                self.queued.fetch_sub(1, Ordering::Relaxed);
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }

    /// Park until [`StealQueues::push_global`]/[`push_local`] signals or
    /// the timeout lapses. The timeout (rather than precise wake
    /// accounting) covers the benign race where work is pushed between a
    /// failed [`take`] scan and the park; `should_wake` short-circuits
    /// shutdown.
    ///
    /// [`push_local`]: StealQueues::push_local
    /// [`take`]: StealQueues::take
    fn park(&self, should_wake: impl Fn() -> bool) {
        let guard = self.injector.lock().expect("injector poisoned");
        if should_wake() || !guard.is_empty() || self.queued.load(Ordering::Relaxed) > 0 {
            return;
        }
        let _unused = self
            .work_cv
            .wait_timeout(guard, Duration::from_millis(20))
            .expect("injector poisoned");
    }
}

// ---------------------------------------------------------------------------
// The persistent thread pool
// ---------------------------------------------------------------------------

type Task = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queues: StealQueues<Task>,
    shutdown: AtomicBool,
    busy: AtomicUsize,
    executed: AtomicU64,
}

/// A persistent work-stealing thread pool executing `'static` tasks.
///
/// Workers are real OS threads created once at [`ThreadPoolBuilder::build`]
/// and parked (condvar, 20 ms re-check) while idle. Dropping the pool is a
/// **graceful shutdown**: every task already submitted runs to completion
/// before the workers exit and are joined. A panicking task is caught at
/// the task boundary and never kills its worker (unlike upstream rayon,
/// which aborts the process).
///
/// Blocking on the result of a task *from inside another task of the same
/// pool* can deadlock a fully busy pool; the `mdd-engine` scheduler only
/// ever blocks from non-pool threads.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.workers.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// A point-in-time sample of a pool's scheduling state, for the
/// `pool_workers_busy` / `pool_queue_depth` / `pool_steals` observability
/// gauges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads owned by the pool.
    pub threads: usize,
    /// Workers currently executing a task.
    pub busy: usize,
    /// Tasks waiting in the injector or a worker deque.
    pub queued: usize,
    /// Cumulative successful steals from sibling deques.
    pub steals: u64,
    /// Cumulative tasks run to completion (panicking tasks included).
    pub executed: u64,
}

impl ThreadPool {
    fn with_threads(n: usize) -> Self {
        let n = n.max(1);
        let shared = Arc::new(PoolShared {
            queues: StealQueues::new(n),
            shutdown: AtomicBool::new(false),
            busy: AtomicUsize::new(0),
            executed: AtomicU64::new(0),
        });
        let workers = (0..n)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mdd-pool-{idx}"))
                    .spawn(move || worker_loop(idx, &shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Submit a task. Never blocks; the task runs as soon as a worker
    /// frees up, with dynamic balancing via stealing.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        assert!(
            !self.shared.shutdown.load(Ordering::Relaxed),
            "spawn on a shut-down pool"
        );
        self.shared.queues.push_global(Box::new(f));
    }

    /// Number of worker threads in this pool.
    pub fn current_num_threads(&self) -> usize {
        self.workers.len()
    }

    /// Sample the scheduling gauges.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.workers.len(),
            busy: self.shared.busy.load(Ordering::Relaxed),
            queued: self.shared.queues.queued.load(Ordering::Relaxed),
            steals: self.shared.queues.steals.load(Ordering::Relaxed),
            executed: self.shared.executed.load(Ordering::Relaxed),
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.queues.work_cv.notify_all();
        for w in self.workers.drain(..) {
            let _unused = w.join();
        }
    }
}

fn worker_loop(idx: usize, shared: &PoolShared) {
    loop {
        if let Some(task) = shared.queues.take(idx) {
            shared.busy.fetch_add(1, Ordering::Relaxed);
            // A panicking task must not take its worker (or, transitively,
            // the whole pool) down with it; the engine additionally wraps
            // every simulation point in its own catch_unwind to convert
            // the payload into a typed PointError.
            let _unused = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
            shared.busy.fetch_sub(1, Ordering::Relaxed);
            shared.executed.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        // Drain-before-exit: shutdown only stops a worker once every
        // queue is empty, so Drop waits for submitted work.
        if shared.shutdown.load(Ordering::Relaxed) {
            if shared.queues.queued.load(Ordering::Relaxed) == 0 {
                break;
            }
            continue;
        }
        shared.queues.park(|| shared.shutdown.load(Ordering::Relaxed));
    }
}

// ---------------------------------------------------------------------------
// Builder + global pool
// ---------------------------------------------------------------------------

/// Global worker-count override installed by [`ThreadPoolBuilder::build_global`]
/// (0 = unset).
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// The lazily created process-global pool shared by everything that does
/// not bring its own (see [`global_pool`]).
static GLOBAL_POOL: OnceLock<Arc<ThreadPool>> = OnceLock::new();

/// The process-global shared pool, created on first use with the
/// [`ThreadPoolBuilder::build_global`] cap / `RAYON_NUM_THREADS` /
/// machine-parallelism sizing rules. Like upstream rayon, the size is
/// fixed once the pool exists — configure the cap *before* the first
/// parallel call.
pub fn global_pool() -> Arc<ThreadPool> {
    Arc::clone(GLOBAL_POOL.get_or_init(|| Arc::new(ThreadPool::with_threads(configured_workers()))))
}

/// Mirror of rayon's `ThreadPoolBuilder`: [`build`](Self::build) a
/// dedicated [`ThreadPool`], or [`build_global`](Self::build_global) to
/// cap the shared one (`--jobs` in the bench binaries).
///
/// ```
/// let pool = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
/// assert_eq!(pool.current_num_threads(), 2);
/// ```
#[derive(Default, Debug)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default (machine-sized) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Use at most `n` worker threads; `0` restores the default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build a dedicated pool with this thread count (machine
    /// parallelism when unset). Never fails in the shim; the `Result`
    /// mirrors upstream's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_workers()
        } else {
            self.num_threads
        };
        Ok(ThreadPool::with_threads(n))
    }

    /// Install the thread-count cap process-globally. The cap applies to
    /// `par_iter` calls and to [`global_pool`] *if it has not been built
    /// yet*; repeated calls simply replace the cap and never fail.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        MAX_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Error type of the [`ThreadPoolBuilder`] build methods (never produced
/// by the shim; present for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool already initialized")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// The machine's logical CPU count (at least 1).
fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Degree of parallelism: the `build_global` cap if set, else the
/// `RAYON_NUM_THREADS` environment variable (as upstream rayon), else the
/// machine's logical CPUs (at least 1).
fn configured_workers() -> usize {
    match MAX_THREADS.load(Ordering::Relaxed) {
        0 => std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(default_workers),
        n => n,
    }
}

// ---------------------------------------------------------------------------
// par_iter over borrowed data (scoped work stealing)
// ---------------------------------------------------------------------------

/// Conversion of `&self` into a parallel iterator (the `par_iter` entry
/// point).
pub trait IntoParallelRefIterator<'a> {
    /// The element type yielded by reference.
    type Item: Sync + 'a;
    /// Create the parallel iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<T> core::fmt::Debug for ParIter<'_, T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ParIter").field("len", &self.items.len()).finish()
    }
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each element through `f`, in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The mapped parallel iterator; consumed by [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<T, F> core::fmt::Debug for ParMap<'_, T, F> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ParMap").field("len", &self.items.len()).finish()
    }
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Run the map across worker threads and collect the results in
    /// input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        run_indexed(self.items.len(), |i| (self.f)(&self.items[i]))
            .into_iter()
            .collect()
    }
}

/// Run `f` once per item of `work` on scoped worker threads, returning
/// the results in input order.
///
/// Unlike `run_indexed` this spawns exactly one worker per item (minus
/// one: the first item runs on the calling thread), with no stealing or
/// splitting — the shape wanted by gang-scheduled phases such as the
/// sharded network cycle, where each item *is* one shard and the caller
/// provides the partition. Items may borrow from the caller's stack
/// (`std::thread::scope` underneath). A panic in any task propagates to
/// the caller after the scope joins.
pub fn scope_map<C: Send, T: Send>(work: Vec<C>, f: impl Fn(C) -> T + Sync) -> Vec<T> {
    let mut work = work;
    if work.len() <= 1 {
        return work.into_iter().map(f).collect();
    }
    let first = work.remove(0);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = work.into_iter().map(|c| scope.spawn(move || f(c))).collect();
        let mut out = Vec::with_capacity(handles.len() + 1);
        out.push(f(first));
        for h in handles {
            out.push(h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)));
        }
        out
    })
}

/// Evaluate `f(0..n)` with work-stealing scheduling and return the
/// results in index order.
///
/// Borrowed closures cannot ride the persistent [`ThreadPool`] (its tasks
/// are `'static`), so this path spawns scoped workers sharing a
/// [`StealQueues`] of index ranges: the injector is seeded with one
/// contiguous chunk per worker; a worker repeatedly takes a range,
/// *splits* anything longer than the grain back onto its own deque (where
/// idle siblings steal it front-first), and evaluates the rest.
fn run_indexed<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let nw = configured_workers().min(n.max(1));
    if nw <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    // Below the grain a range is evaluated outright; splitting finer only
    // buys queue traffic.
    let grain = (n / (8 * nw)).max(1);
    let queues: StealQueues<std::ops::Range<usize>> = StealQueues::new(nw);
    for w in 0..nw {
        let (lo, hi) = (w * n / nw, (w + 1) * n / nw);
        if lo < hi {
            queues.push_global(lo..hi);
        }
    }
    let done = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..nw {
            let (queues, done, slots, f) = (&queues, &done, &slots, &f);
            scope.spawn(move || {
                while done.load(Ordering::Acquire) < n {
                    let Some(mut range) = queues.take(w) else {
                        // All queues dry, but a sibling may still split the
                        // range it is working on — park briefly and rescan.
                        queues.park(|| done.load(Ordering::Acquire) >= n);
                        continue;
                    };
                    while range.len() > grain {
                        let mid = range.start + range.len() / 2;
                        queues.push_local(w, mid..range.end);
                        range = range.start..mid;
                    }
                    for i in range {
                        *slots[i].lock().expect("result slot poisoned") = Some(f(i));
                        done.fetch_add(1, Ordering::Release);
                    }
                }
                // Unblock siblings parked after the final completion.
                queues.work_cv.notify_all();
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("every index was processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u32> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x as u64 * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x as u64 * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = Vec::new();
        let out: Vec<u32> = none.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [5u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still all complete and land in
        // order (exercises splitting + stealing).
        let xs: Vec<usize> = (0..64).collect();
        let ys: Vec<usize> = xs
            .par_iter()
            .map(|&x| {
                let mut acc = 0usize;
                for i in 0..(x * 1000) {
                    acc = acc.wrapping_add(i);
                }
                let _ = acc;
                x
            })
            .collect();
        assert_eq!(ys, xs);
    }

    #[test]
    fn pool_runs_every_task_and_drains_on_drop() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..257 {
            let hits = Arc::clone(&hits);
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // graceful: joins only after the backlog drains
        assert_eq!(hits.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn pool_survives_panicking_tasks() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let hits = Arc::new(AtomicUsize::new(0));
        for i in 0..16 {
            let hits = Arc::clone(&hits);
            pool.spawn(move || {
                if i % 4 == 0 {
                    panic!("task {i} poisoned");
                }
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool);
        assert_eq!(hits.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn pool_stats_count_executed_tasks() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let gate = Arc::new(std::sync::Barrier::new(4));
        for _ in 0..3 {
            let gate = Arc::clone(&gate);
            pool.spawn(move || {
                gate.wait();
            });
        }
        gate.wait(); // all three workers are simultaneously busy here
        // Post-barrier the tasks finish immediately; wait for the drain.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while pool.stats().executed < 3 {
            assert!(std::time::Instant::now() < deadline, "pool never drained");
            std::thread::yield_now();
        }
        let stats = pool.stats();
        assert_eq!(stats.threads, 3);
        assert_eq!(stats.executed, 3);
        assert_eq!(stats.queued, 0);
    }
}
