//! Routing over a degraded (faulted) topology.
//!
//! [`DegradedRouting`] wraps a scheme's [`SchemeRouting`] and reroutes
//! around a [`FaultSet`] by steering along precomputed BFS distance
//! fields: a direction is *productive* when its link is live and it
//! strictly decreases the degraded-topology distance to the destination
//! router. The scheme's VC discipline (adaptive sets, escape sets,
//! dateline classes) is preserved — only the admissible directions
//! change.
//!
//! Two properties the static analyzer depends on:
//!
//! * **Delegation at zero faults.** With an empty fault set (or for any
//!   destination whose distance field and incident links are unaffected),
//!   the candidate vector is *identical* to the base [`SchemeRouting`]'s:
//!   BFS distances equal minimal-hop distances, so the productive
//!   directions coincide, and the escape choice (first productive
//!   direction in dimension order, ties toward `Plus`) reproduces
//!   dimension-order routing's `dor_direction` exactly. This is what lets
//!   the incremental verifier reuse unaffected dependency-graph segments
//!   byte-for-byte.
//! * **No candidates when stranded.** A packet at a router with no live
//!   path to its destination gets an *empty* candidate set rather than a
//!   panic; the verifier turns such stranded occupants into an `Unsafe`
//!   verdict (an undeliverable message wedges its channel permanently).
//!
//! Note the degraded escape is *not* deadlock-free by construction the
//! way dimension-order routing is: a detour can revisit a dimension and
//! reuse an escape channel out of dateline order. That is deliberate —
//! the verifier's job is to discover exactly when a fault breaks a
//! scheme's static argument, not to mask it.

use crate::function::SchemeRouting;
use mdd_router::{PacketState, RouteCandidate, Routing};
use mdd_topology::{Direction, FaultSet, NodeId, PortId, Topology, UNREACHABLE};

/// A fault-aware routing function borrowing the base scheme routing, the
/// fault set, and the per-destination-router distance fields
/// ([`FaultSet::distance_fields`]).
#[derive(Clone, Copy, Debug)]
pub struct DegradedRouting<'a> {
    base: &'a SchemeRouting,
    faults: &'a FaultSet,
    /// `fields[r][n]` = live hops from router `n` to router `r`.
    fields: &'a [Vec<u32>],
}

impl<'a> DegradedRouting<'a> {
    /// Wrap `base` with `faults` and its distance fields. `fields` must
    /// come from [`FaultSet::distance_fields`] on the same topology.
    pub fn new(base: &'a SchemeRouting, faults: &'a FaultSet, fields: &'a [Vec<u32>]) -> Self {
        DegradedRouting { base, faults, fields }
    }

    /// The wrapped base routing.
    pub fn base(&self) -> &'a SchemeRouting {
        self.base
    }

    /// True when `src` has a live path to router `dst`.
    pub fn reachable(&self, src: NodeId, dst: NodeId) -> bool {
        self.fields[dst.index()][src.index()] != UNREACHABLE
    }
}

impl Routing for DegradedRouting<'_> {
    fn candidates(
        &self,
        topo: &Topology,
        node: NodeId,
        pkt: &PacketState,
        rr_hint: u64,
        out: &mut Vec<RouteCandidate>,
    ) {
        if self.faults.is_empty() {
            return self.base.candidates(topo, node, pkt, rr_hint, out);
        }
        if node == pkt.dst_router {
            let local = topo.nic_local_index(pkt.dst);
            out.push(RouteCandidate {
                port: topo.local_port(local),
                vc: 0,
            });
            return;
        }
        let dist = &self.fields[pkt.dst_router.index()];
        let here = dist[node.index()];
        if here == UNREACHABLE {
            return; // stranded: no admissible hop exists
        }

        // Productive directions on the degraded topology, in the same
        // (dimension ascending, Plus before Minus) order the base routing
        // enumerates minimal directions.
        let mut dirs = [(PortId(0), 0usize, Direction::Plus); 8];
        let mut ndirs = 0usize;
        debug_assert!(2 * topo.dims() <= dirs.len());
        for d in 0..topo.dims() {
            for dir in [Direction::Plus, Direction::Minus] {
                if self.faults.link_down(node, d, dir) {
                    continue;
                }
                let Some(nbr) = topo.neighbor(node, d, dir) else {
                    continue;
                };
                if self.faults.router_down(nbr) || dist[nbr.index()] >= here {
                    continue;
                }
                dirs[ndirs] = (topo.port(d, dir), d, dir);
                ndirs += 1;
            }
        }
        let dirs = &dirs[..ndirs];
        debug_assert!(!dirs.is_empty(), "reachable node must have a productive hop");

        let tv = self.base.map().for_type(pkt.mtype);
        if !tv.adaptive.is_empty() && !dirs.is_empty() {
            let n = dirs.len() * tv.adaptive.len();
            let rot = (rr_hint % n as u64) as usize;
            for i in 0..n {
                let k = (rot + i) % n;
                out.push(RouteCandidate {
                    port: dirs[k / tv.adaptive.len()].0,
                    vc: tv.adaptive[k % tv.adaptive.len()],
                });
            }
        }
        if !tv.escape.is_empty() {
            if let Some(&(port, d, _)) = dirs.first() {
                let class = if tv.escape.len() > 1 {
                    ((pkt.crossed_dateline >> d) & 1) as usize
                } else {
                    0
                };
                out.push(RouteCandidate {
                    port,
                    vc: tv.escape[class],
                });
            }
        }
    }

    fn injection_vcs(&self, pkt: &PacketState, out: &mut Vec<u8>) {
        self.base.injection_vcs(pkt, out);
    }

    fn dateline_sensitive(&self, mtype: mdd_protocol::MsgType) -> bool {
        // The degraded escape reads the mask under exactly the same
        // condition as the base routing (`tv.escape.len() > 1`).
        self.base.dateline_sensitive(mtype)
    }
}
