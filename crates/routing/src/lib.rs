//! # mdd-routing
//!
//! Routing policies and virtual-channel resource maps for the three
//! message-dependent deadlock handling schemes:
//!
//! * **SA** (strict avoidance): virtual channels are partitioned into one
//!   logical network per message type; each partition routes with
//!   dimension-order on its two dateline-class escape channels and, when
//!   the partition is larger than the escape set, adds fully adaptive
//!   channels under Duato's protocol. A variant shares all channels beyond
//!   the per-type escape sets among every type (Martinez et al. \[21\]).
//! * **DR** (deflective recovery): the same structure with exactly two
//!   logical networks — request and reply.
//! * **PR** (progressive recovery): true fully adaptive routing — every
//!   virtual channel is usable by every message type in every minimal
//!   direction; deadlock freedom is *not* guaranteed and recovery is
//!   delegated to the Extended Disha machinery in `mdd-deadlock`.
//!
//! The exported [`SchemeRouting`] implements `mdd-router`'s
//! [`mdd_router::Routing`] trait and is the single routing object the
//! simulator needs per configuration.

#![warn(missing_docs)]

mod degraded;
mod function;
mod scheme;
mod vcmap;

pub use degraded::DegradedRouting;
pub use function::SchemeRouting;
pub use scheme::{Scheme, SchemeConfigError};
pub use vcmap::{TypeVcs, VcMap};

#[cfg(test)]
mod tests;
