//! Virtual-channel resource maps: which VCs each message type may use, and
//! in which role (dateline-class escape vs fully adaptive).

use crate::scheme::{Scheme, SchemeConfigError};
use mdd_protocol::{MsgKind, MsgType, ProtocolSpec};

/// The VC set available to one message type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeVcs {
    /// Escape VC per dateline class (`escape[c]` is the dimension-order
    /// escape channel used after `c` dateline crossings in the current
    /// dimension). Length `E_r`: 2 on a torus, 1 on a mesh. Empty for PR.
    pub escape: Vec<u8>,
    /// Fully adaptive VCs, usable in any minimal direction.
    pub adaptive: Vec<u8>,
}

impl TypeVcs {
    /// All VCs this type may occupy (adaptive then escape).
    pub fn all(&self) -> Vec<u8> {
        let mut v = self.adaptive.clone();
        v.extend_from_slice(&self.escape);
        v
    }

    /// Number of VCs available to the type.
    pub fn availability(&self) -> usize {
        self.adaptive.len() + self.escape.len()
    }

    /// The paper's channel-availability measure (Section 2.1): adaptive
    /// channels plus at most one escape channel (a packet uses one dateline
    /// class at a time), i.e. `1 + (C/L − E_r)` for partitioned schemes.
    pub fn paper_availability(&self) -> usize {
        self.adaptive.len() + usize::from(!self.escape.is_empty())
    }
}

/// Per-message-type VC map for one scheme configuration.
#[derive(Clone, Debug)]
pub struct VcMap {
    per_type: Vec<TypeVcs>,
    num_vcs: u8,
    escape_size: usize,
}

impl VcMap {
    /// Build the map for `scheme` over `num_vcs` virtual channels.
    /// `escape_size` is `E_r`: 2 for tori (dateline classes), 1 for
    /// meshes.
    pub fn build(
        scheme: Scheme,
        protocol: &ProtocolSpec,
        num_vcs: u8,
        escape_size: usize,
    ) -> Result<VcMap, SchemeConfigError> {
        let c = num_vcs as usize;
        let need = scheme.min_vcs(protocol, escape_size);
        if c < need {
            return Err(SchemeConfigError::TooFewVirtualChannels {
                needed: need,
                available: c,
            });
        }
        let per_type = match scheme {
            Scheme::ProgressiveRecovery => {
                // True fully adaptive: every VC, every type, no escape.
                let adaptive: Vec<u8> = (0..num_vcs).collect();
                protocol
                    .msg_types()
                    .map(|_| TypeVcs {
                        escape: Vec::new(),
                        adaptive: adaptive.clone(),
                    })
                    .collect()
            }
            Scheme::StrictAvoidance {
                shared_adaptive: false,
            } => {
                let parts = protocol.num_partition_types();
                Self::partitioned(protocol, parts, c, escape_size, |t| {
                    protocol.sa_partition(t)
                })
            }
            Scheme::StrictAvoidance {
                shared_adaptive: true,
            } => {
                // Escape sets are per type; everything above P*E_r is a
                // common adaptive pool shared by all message types [21].
                let parts = protocol.num_partition_types();
                let shared: Vec<u8> = ((parts * escape_size) as u8..num_vcs).collect();
                protocol
                    .msg_types()
                    .map(|t| {
                        let p = protocol.sa_partition(t);
                        let escape: Vec<u8> =
                            (0..escape_size).map(|e| (p * escape_size + e) as u8).collect();
                        TypeVcs {
                            escape,
                            adaptive: shared.clone(),
                        }
                    })
                    .collect()
            }
            Scheme::DeflectiveRecovery => {
                let has_req = protocol
                    .msg_types()
                    .any(|t| protocol.kind(t) == MsgKind::Request);
                let has_rep = protocol
                    .msg_types()
                    .any(|t| protocol.kind(t) == MsgKind::Reply);
                if !has_req || !has_rep {
                    return Err(SchemeConfigError::DegenerateNetworkSplit);
                }
                Self::partitioned(protocol, 2, c, escape_size, |t| protocol.dr_network(t))
            }
        };
        Ok(VcMap {
            per_type,
            num_vcs,
            escape_size,
        })
    }

    /// Build the map the scheme would be forced into with fewer virtual
    /// channels than [`VcMap::build`] accepts: partitions are merged when
    /// there are fewer VCs than partitions (types mapped modulo the
    /// partition count) and a partition smaller than `escape_size` keeps a
    /// *truncated* escape set (losing dateline classes).
    ///
    /// The result deliberately violates the scheme's deadlock-freedom
    /// prerequisites — types share resource partitions across `≺` levels
    /// and/or a torus escape ring loses its dateline break. It exists so
    /// the static verifier (`mdd-verify`) can exhibit *why* such a
    /// configuration is rejected, with a concrete cycle witness, and so
    /// tests can demonstrate the corresponding dynamic deadlock. Never
    /// used by a validated simulation.
    ///
    /// Panics if `num_vcs` is zero.
    pub fn build_degraded(
        scheme: Scheme,
        protocol: &ProtocolSpec,
        num_vcs: u8,
        escape_size: usize,
    ) -> VcMap {
        assert!(num_vcs > 0, "a network needs at least one virtual channel");
        if let Ok(map) = Self::build(scheme, protocol, num_vcs, escape_size) {
            return map;
        }
        let c = num_vcs as usize;
        let wanted = match scheme {
            Scheme::ProgressiveRecovery => 1,
            Scheme::StrictAvoidance { .. } => protocol.num_partition_types(),
            Scheme::DeflectiveRecovery => 2,
        };
        let parts = wanted.min(c).max(1);
        let per_type = match scheme {
            // PR is feasible at any c >= 1; `build` above already handled it.
            Scheme::ProgressiveRecovery => unreachable!("PR accepts any vc count"),
            Scheme::StrictAvoidance { .. } => {
                Self::degraded_partitioned(protocol, parts, c, escape_size, |t| {
                    protocol.sa_partition(t) % parts
                })
            }
            Scheme::DeflectiveRecovery => {
                Self::degraded_partitioned(protocol, parts, c, escape_size, |t| {
                    protocol.dr_network(t) % parts
                })
            }
        };
        VcMap {
            per_type,
            num_vcs,
            escape_size,
        }
    }

    /// Like [`VcMap::partitioned`], but tolerates partitions smaller than
    /// `escape_size` by truncating their escape sets.
    fn degraded_partitioned(
        protocol: &ProtocolSpec,
        parts: usize,
        c: usize,
        escape_size: usize,
        part_of: impl Fn(MsgType) -> usize,
    ) -> Vec<TypeVcs> {
        let base = c / parts;
        let extra = c % parts;
        let size = |p: usize| base + usize::from(p < extra);
        let start = |p: usize| (0..p).map(size).sum::<usize>();
        protocol
            .msg_types()
            .map(|t| {
                let p = part_of(t);
                let s = start(p);
                let n = size(p);
                let e = escape_size.min(n);
                TypeVcs {
                    escape: (s..s + e).map(|v| v as u8).collect(),
                    adaptive: (s + e..s + n).map(|v| v as u8).collect(),
                }
            })
            .collect()
    }

    /// Divide `c` VCs into `parts` contiguous partitions (distributing any
    /// remainder to the lowest partitions), each with `escape_size` escape
    /// channels first and adaptive channels after.
    fn partitioned(
        protocol: &ProtocolSpec,
        parts: usize,
        c: usize,
        escape_size: usize,
        part_of: impl Fn(MsgType) -> usize,
    ) -> Vec<TypeVcs> {
        let base = c / parts;
        let extra = c % parts;
        // Partition p owns [start(p), start(p)+size(p)).
        let size = |p: usize| base + usize::from(p < extra);
        let start = |p: usize| (0..p).map(size).sum::<usize>();
        protocol
            .msg_types()
            .map(|t| {
                let p = part_of(t);
                let s = start(p);
                let n = size(p);
                debug_assert!(n >= escape_size, "feasibility checked by caller");
                TypeVcs {
                    escape: (s..s + escape_size).map(|v| v as u8).collect(),
                    adaptive: (s + escape_size..s + n).map(|v| v as u8).collect(),
                }
            })
            .collect()
    }

    /// The VC set for message type `t`.
    #[inline]
    pub fn for_type(&self, t: MsgType) -> &TypeVcs {
        &self.per_type[t.index()]
    }

    /// Total virtual channels per physical link.
    #[inline]
    pub fn num_vcs(&self) -> u8 {
        self.num_vcs
    }

    /// `E_r`: escape channels required against routing-dependent deadlock.
    #[inline]
    pub fn escape_size(&self) -> usize {
        self.escape_size
    }

    /// True if type `t` routes adaptively (has at least one adaptive VC).
    pub fn is_adaptive(&self, t: MsgType) -> bool {
        !self.per_type[t.index()].adaptive.is_empty()
    }
}
