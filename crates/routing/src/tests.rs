//! Tests for VC maps and the scheme routing function, including the
//! paper's channel-availability arithmetic from Sections 2.1 and 4.3.2.

use crate::*;
use mdd_protocol::{
    Message, MessageId, MessageStore, MsgType, ProtocolSpec, ShapeId, TransactionId,
};
use mdd_router::{PacketState, RouteCandidate, Routing};
use mdd_topology::{NicId, NodeId, Topology, TopologyKind};

const SA: Scheme = Scheme::StrictAvoidance {
    shared_adaptive: false,
};
const SAP: Scheme = Scheme::StrictAvoidance {
    shared_adaptive: true,
};

fn pkt(mtype: u8, src: u32, dst: u32, crossed: u8) -> PacketState {
    // Routing reads only the fields cached in PacketState; the handle is
    // minted from a throwaway store to keep it well-formed.
    let mut store = MessageStore::new();
    let h = store.insert(Message {
        id: MessageId(1),
        txn: TransactionId(1),
        mtype: MsgType(mtype),
        shape: ShapeId(0),
        chain_pos: 0,
        src: NicId(src),
        dst: NicId(dst),
        requester: NicId(src),
        home: NicId(dst),
        owner: NicId(dst),
        length_flits: 4,
        created: 0,
        is_backoff: false,
        rescued: false,
        sharers: 0,
    });
    PacketState {
        msg: h,
        mtype: MsgType(mtype),
        src: NicId(src),
        dst: NicId(dst),
        dst_router: NodeId(dst),
        crossed_dateline: crossed,
        injected_at: 0,
    }
}

#[test]
fn sa_infeasible_with_4_vcs_and_chain_4() {
    // Figure 8 omits SA for all patterns except PAT100 at 4 VCs.
    let p = ProtocolSpec::s1_generic();
    assert!(matches!(
        VcMap::build(SA, &p, 4, 2),
        Err(SchemeConfigError::TooFewVirtualChannels {
            needed: 8,
            available: 4
        })
    ));
    // PAT100's two-type protocol is feasible at 4 VCs.
    assert!(VcMap::build(SA, &ProtocolSpec::two_type(), 4, 2).is_ok());
}

#[test]
fn dr_feasible_with_4_vcs() {
    let p = ProtocolSpec::s1_generic();
    let map = VcMap::build(Scheme::DeflectiveRecovery, &p, 4, 2).unwrap();
    // 2 VCs per network, all escape: DOR-only, availability 1.
    for t in p.msg_types() {
        let tv = map.for_type(t);
        assert_eq!(tv.escape.len(), 2);
        assert_eq!(tv.adaptive.len(), 0);
        assert_eq!(tv.paper_availability(), 1);
    }
    // Request and reply types use disjoint VC sets.
    let req = map.for_type(MsgType(0)).all();
    let rep = map.for_type(MsgType(3)).all();
    assert!(req.iter().all(|v| !rep.contains(v)));
}

/// Figure 9 discussion: with 8 VCs, SA on a chain-4 protocol has only the
/// escape pair per type (availability 1); on PAT100's chain-2 protocol,
/// availability is 3 (or 5 with the shared-adaptive variant).
#[test]
fn paper_availability_8_vcs() {
    let p4 = ProtocolSpec::s1_generic();
    let map = VcMap::build(SA, &p4, 8, 2).unwrap();
    assert_eq!(map.for_type(MsgType(0)).paper_availability(), 1);

    let p2 = ProtocolSpec::two_type();
    let map = VcMap::build(SA, &p2, 8, 2).unwrap();
    assert_eq!(map.for_type(MsgType(0)).paper_availability(), 3);
    let map = VcMap::build(SAP, &p2, 8, 2).unwrap();
    assert_eq!(map.for_type(MsgType(0)).paper_availability(), 5);
}

/// Figure 10 discussion: with 16 VCs and chain length 4, three (or nine
/// with [21]) VCs are available per type for SA, seven for DR, sixteen for
/// PR.
#[test]
fn paper_availability_16_vcs() {
    let p = ProtocolSpec::s1_generic();
    let sa = VcMap::build(SA, &p, 16, 2).unwrap();
    assert_eq!(sa.for_type(MsgType(0)).paper_availability(), 3);
    let sap = VcMap::build(SAP, &p, 16, 2).unwrap();
    assert_eq!(sap.for_type(MsgType(0)).paper_availability(), 9);
    let dr = VcMap::build(Scheme::DeflectiveRecovery, &p, 16, 2).unwrap();
    assert_eq!(dr.for_type(MsgType(0)).paper_availability(), 7);
    let pr = VcMap::build(Scheme::ProgressiveRecovery, &p, 16, 2).unwrap();
    assert_eq!(pr.for_type(MsgType(0)).paper_availability(), 16);
    assert!(pr.for_type(MsgType(0)).escape.is_empty());
}

#[test]
fn sa_partitions_are_disjoint_and_cover() {
    let p = ProtocolSpec::s1_generic();
    let map = VcMap::build(SA, &p, 16, 2).unwrap();
    let mut used = [false; 16];
    for t in p.msg_types() {
        if Some(t) == p.backoff_type() {
            continue; // shares the terminating type's set
        }
        for v in map.for_type(t).all() {
            assert!(!used[v as usize], "VC {v} assigned to two partitions");
            used[v as usize] = true;
        }
    }
    assert!(used.iter().all(|&u| u), "all 16 VCs must be assigned");
    // The backoff type's set equals the terminating type's set.
    let bkf = p.backoff_type().unwrap();
    assert_eq!(map.for_type(bkf), map.for_type(p.terminating_type()));
}

#[test]
fn shared_adaptive_pool_is_common() {
    let p = ProtocolSpec::s1_generic();
    let map = VcMap::build(SAP, &p, 16, 2).unwrap();
    let pool = &map.for_type(MsgType(0)).adaptive;
    assert_eq!(pool.len(), 16 - 4 * 2);
    for t in p.msg_types() {
        assert_eq!(&map.for_type(t).adaptive, pool, "pool shared by all types");
    }
    // Escape pairs remain disjoint per partition.
    assert_ne!(map.for_type(MsgType(0)).escape, map.for_type(MsgType(1)).escape);
}

#[test]
fn dr_split_rejects_single_kind_protocols() {
    let p = ProtocolSpec::new(
        "all-req",
        vec![
            mdd_protocol::MsgTypeSpec::request("A"),
            mdd_protocol::MsgTypeSpec::request("T").terminating().with_length(4),
        ],
        &[(0, 1)],
        None,
    );
    // Both types are requests: the reply network would be empty... but the
    // terminating type here is Request-kind, so the split is degenerate.
    assert!(matches!(
        VcMap::build(Scheme::DeflectiveRecovery, &p, 8, 2),
        Err(SchemeConfigError::DegenerateNetworkSplit)
    ));
}

#[test]
fn scheme_labels_and_defaults() {
    use mdd_protocol::QueueOrg;
    assert_eq!(SA.label(), "SA");
    assert_eq!(SAP.label(), "SA+");
    assert_eq!(Scheme::DeflectiveRecovery.label(), "DR");
    assert_eq!(Scheme::ProgressiveRecovery.label(), "PR");
    assert_eq!(SA.default_queue_org(), QueueOrg::PerType);
    assert_eq!(
        Scheme::DeflectiveRecovery.default_queue_org(),
        QueueOrg::PerNetwork
    );
    assert_eq!(
        Scheme::ProgressiveRecovery.default_queue_org(),
        QueueOrg::Shared
    );
    assert!(SA.is_avoidance());
    assert!(!Scheme::ProgressiveRecovery.is_avoidance());
}

fn candidates(
    routing: &SchemeRouting,
    topo: &Topology,
    node: u32,
    p: &PacketState,
) -> Vec<RouteCandidate> {
    let mut out = Vec::new();
    routing.candidates(topo, NodeId(node), p, 0, &mut out);
    out
}

#[test]
fn pr_offers_all_vcs_in_all_productive_directions() {
    let topo = Topology::new(TopologyKind::Torus, &[8, 8], 1);
    let proto = ProtocolSpec::s1_generic();
    let map = VcMap::build(Scheme::ProgressiveRecovery, &proto, 4, 2).unwrap();
    let routing = SchemeRouting::new(map);
    // From router 0 to router 27 = (3, 3): Plus in both dims.
    let p = pkt(0, 0, 27, 0);
    let cands = candidates(&routing, &topo, 0, &p);
    // 2 productive directions x 4 VCs, no escape.
    assert_eq!(cands.len(), 8);
    let ports: std::collections::HashSet<u8> = cands.iter().map(|c| c.port.0).collect();
    assert_eq!(ports.len(), 2);
}

#[test]
fn sa_dor_only_uses_escape_class_by_dateline() {
    let topo = Topology::new(TopologyKind::Torus, &[8, 8], 1);
    let proto = ProtocolSpec::two_type();
    let map = VcMap::build(SA, &proto, 4, 2).unwrap();
    let routing = SchemeRouting::new(map.clone());
    // Type 0 owns VCs {0,1} (escape only): DOR.
    let p0 = pkt(0, 0, 3, 0);
    let c = candidates(&routing, &topo, 0, &p0);
    assert_eq!(c.len(), 1, "DOR-only: single candidate");
    assert_eq!(c[0].vc, map.for_type(MsgType(0)).escape[0]);
    // After crossing the dim-0 dateline, class 1 is used.
    let p1 = pkt(0, 0, 3, 0b01);
    let c = candidates(&routing, &topo, 0, &p1);
    assert_eq!(c[0].vc, map.for_type(MsgType(0)).escape[1]);
    // Reply type uses the other partition.
    let pr = pkt(1, 0, 3, 0);
    let c = candidates(&routing, &topo, 0, &pr);
    assert_eq!(c[0].vc, map.for_type(MsgType(1)).escape[0]);
}

#[test]
fn duato_orders_adaptive_before_escape() {
    let topo = Topology::new(TopologyKind::Torus, &[8, 8], 1);
    let proto = ProtocolSpec::two_type();
    let map = VcMap::build(SA, &proto, 8, 2).unwrap(); // 4 per type: 2 escape + 2 adaptive
    let routing = SchemeRouting::new(map.clone());
    let p = pkt(0, 0, 9, 0); // (1,1): both dims productive
    let c = candidates(&routing, &topo, 0, &p);
    // 2 dirs x 2 adaptive + 1 escape.
    assert_eq!(c.len(), 5);
    let tv = map.for_type(MsgType(0));
    for cand in &c[..4] {
        assert!(tv.adaptive.contains(&cand.vc), "adaptive candidates first");
    }
    assert_eq!(c[4].vc, tv.escape[0], "escape candidate last");
}

#[test]
fn destination_router_routes_to_local_port() {
    let topo = Topology::new(TopologyKind::Torus, &[4, 4], 2);
    let proto = ProtocolSpec::s1_generic();
    let map = VcMap::build(Scheme::ProgressiveRecovery, &proto, 4, 2).unwrap();
    let routing = SchemeRouting::new(map);
    // NIC 7 lives on router 3, local index 1.
    let p = pkt(0, 0, 7, 0);
    let mut p = p;
    p.dst_router = topo.nic_router(NicId(7));
    let c = candidates(&routing, &topo, p.dst_router.0, &p);
    assert_eq!(c.len(), 1);
    assert_eq!(c[0].port, topo.local_port(1));
}

#[test]
fn injection_vcs_respect_partitions() {
    let proto = ProtocolSpec::s1_generic();
    let map = VcMap::build(SA, &proto, 16, 2).unwrap();
    let routing = SchemeRouting::new(map.clone());
    let p = pkt(1, 0, 5, 0); // FRQ: partition 1 owns VCs 4..8
    let mut vcs = Vec::new();
    routing.injection_vcs(&p, &mut vcs);
    // 2 adaptive + escape class 0.
    let tv = map.for_type(MsgType(1));
    assert_eq!(vcs.len(), tv.adaptive.len() + 1);
    assert!(vcs.contains(&tv.escape[0]));
    assert!(!vcs.contains(&tv.escape[1]), "class-1 escape not for injection");
    for v in &vcs {
        assert!(tv.all().contains(v));
    }
}

#[test]
fn rotation_hint_rotates_adaptive_candidates() {
    let topo = Topology::new(TopologyKind::Torus, &[8, 8], 1);
    let proto = ProtocolSpec::s1_generic();
    let map = VcMap::build(Scheme::ProgressiveRecovery, &proto, 4, 2).unwrap();
    let routing = SchemeRouting::new(map);
    let p = pkt(0, 0, 27, 0);
    let mut a = Vec::new();
    let mut b = Vec::new();
    routing.candidates(&topo, NodeId(0), &p, 0, &mut a);
    routing.candidates(&topo, NodeId(0), &p, 3, &mut b);
    assert_eq!(a.len(), b.len());
    assert_ne!(a[0], b[0], "hint must rotate the preferred candidate");
    // Same multiset either way.
    let key = |c: &RouteCandidate| (c.port.0, c.vc);
    let mut ka: Vec<_> = a.iter().map(key).collect();
    let mut kb: Vec<_> = b.iter().map(key).collect();
    ka.sort_unstable();
    kb.sort_unstable();
    assert_eq!(ka, kb);
}

#[test]
fn min_vcs_matches_paper_formulas() {
    let p = ProtocolSpec::s1_generic();
    // E_m = L * E_r with L=4 partition types, E_r=2.
    assert_eq!(SA.min_vcs(&p, 2), 8);
    assert_eq!(Scheme::DeflectiveRecovery.min_vcs(&p, 2), 4);
    assert_eq!(Scheme::ProgressiveRecovery.min_vcs(&p, 2), 1);
    // Mesh: E_r = 1.
    assert_eq!(SA.min_vcs(&p, 1), 4);
    // Origin2000: three partitions (BRP shares TRP's).
    let o = ProtocolSpec::origin2000();
    assert_eq!(SA.min_vcs(&o, 2), 6);
}


// ---------------------------------------------------------------------
// Mesh configurations (E_r = 1: no datelines needed).
// ---------------------------------------------------------------------

#[test]
fn mesh_needs_single_escape_channel() {
    let p = ProtocolSpec::s1_generic();
    // SA on a mesh: 4 partitions x 1 escape = 4 VCs suffice.
    let map = VcMap::build(SA, &p, 4, 1).unwrap();
    for t in p.msg_types() {
        let tv = map.for_type(t);
        assert_eq!(tv.escape.len(), 1);
        assert_eq!(tv.adaptive.len(), 0);
    }
    assert!(VcMap::build(SA, &p, 3, 1).is_err(), "below E_m");
    // DR on a mesh: 2 x 1.
    assert!(VcMap::build(Scheme::DeflectiveRecovery, &p, 2, 1).is_ok());
}

#[test]
fn mesh_escape_ignores_dateline_class() {
    let topo = Topology::new(TopologyKind::Mesh, &[4, 4], 1);
    let proto = ProtocolSpec::two_type();
    let map = VcMap::build(SA, &proto, 2, 1).unwrap();
    let routing = SchemeRouting::new(map.clone());
    // Even with a (bogus) crossed-dateline bit set, a single-entry escape
    // set always uses class 0.
    let p = pkt(0, 0, 3, 0b11);
    let c = candidates(&routing, &topo, 0, &p);
    assert_eq!(c.len(), 1);
    assert_eq!(c[0].vc, map.for_type(MsgType(0)).escape[0]);
}

#[test]
fn candidates_never_point_off_mesh() {
    let topo = Topology::new(TopologyKind::Mesh, &[4, 4], 1);
    let proto = ProtocolSpec::s1_generic();
    let map = VcMap::build(Scheme::ProgressiveRecovery, &proto, 4, 1).unwrap();
    let routing = SchemeRouting::new(map);
    for src in 0..16u32 {
        for dst in 0..16u32 {
            if src == dst {
                continue;
            }
            let p = pkt(0, src, dst, 0);
            let mut out = Vec::new();
            routing.candidates(&topo, NodeId(src), &p, 0, &mut out);
            assert!(!out.is_empty());
            for c in &out {
                if let Some((d, dir)) = topo.port_dim_dir(c.port) {
                    assert!(
                        topo.neighbor(NodeId(src), d, dir).is_some(),
                        "candidate across a nonexistent mesh boundary link"
                    );
                }
            }
        }
    }
}
