//! The three deadlock-handling schemes and their configuration rules.

use mdd_protocol::{ProtocolSpec, QueueOrg};

/// Which message-dependent deadlock handling technique a simulation uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scheme {
    /// Strict avoidance: one logical network per message type
    /// (Alpha 21364-style). With `shared_adaptive`, only the escape
    /// channels are partitioned per type and all remaining channels form a
    /// common adaptive pool (Martinez, Torrellas & Duato \[21\]).
    StrictAvoidance {
        /// Share channels beyond the per-type escape sets among all types.
        shared_adaptive: bool,
    },
    /// Deflective recovery: two logical networks (request/reply) plus
    /// Origin2000-style backoff replies on detection.
    DeflectiveRecovery,
    /// Progressive recovery: true fully adaptive routing over completely
    /// shared resources plus Extended Disha Sequential rescue.
    ProgressiveRecovery,
}

impl Scheme {
    /// Short label used in result tables ("SA", "SA+", "DR", "PR").
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::StrictAvoidance {
                shared_adaptive: false,
            } => "SA",
            Scheme::StrictAvoidance {
                shared_adaptive: true,
            } => "SA+",
            Scheme::DeflectiveRecovery => "DR",
            Scheme::ProgressiveRecovery => "PR",
        }
    }

    /// The default endpoint queue organization the scheme mandates
    /// (Section 4.3.1); PR and DR may additionally be run with
    /// [`QueueOrg::PerType`] — the "QA" configuration of Figure 11.
    pub fn default_queue_org(&self) -> QueueOrg {
        match self {
            Scheme::StrictAvoidance { .. } => QueueOrg::PerType,
            Scheme::DeflectiveRecovery => QueueOrg::PerNetwork,
            Scheme::ProgressiveRecovery => QueueOrg::Shared,
        }
    }

    /// Whether this scheme guarantees freedom from message-dependent
    /// deadlock by construction (no detection/recovery machinery needed).
    pub fn is_avoidance(&self) -> bool {
        matches!(self, Scheme::StrictAvoidance { .. })
    }

    /// The minimum number of virtual channels per physical link required
    /// to configure the scheme for `protocol` (`E_m` for SA, `2·E_r` for
    /// DR, 1 for PR), with `escape_size` = `E_r` (2 on a torus, 1 on a
    /// mesh).
    pub fn min_vcs(&self, protocol: &ProtocolSpec, escape_size: usize) -> usize {
        match self {
            Scheme::StrictAvoidance { .. } => protocol.num_partition_types() * escape_size,
            Scheme::DeflectiveRecovery => 2 * escape_size,
            Scheme::ProgressiveRecovery => 1,
        }
    }
}

/// Why a scheme cannot be configured with the requested resources.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SchemeConfigError {
    /// Fewer virtual channels than the scheme's minimum (`needed`,
    /// `available`).
    TooFewVirtualChannels {
        /// Minimum VCs the scheme requires for this protocol/topology.
        needed: usize,
        /// VCs actually configured.
        available: usize,
    },
    /// Deflective recovery needs a protocol with both request and reply
    /// message kinds.
    DegenerateNetworkSplit,
}

impl std::fmt::Display for SchemeConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemeConfigError::TooFewVirtualChannels { needed, available } => write!(
                f,
                "scheme requires at least {needed} virtual channels, only {available} available"
            ),
            SchemeConfigError::DegenerateNetworkSplit => {
                write!(f, "deflective recovery needs both request and reply kinds")
            }
        }
    }
}

impl std::error::Error for SchemeConfigError {}
