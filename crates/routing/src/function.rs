//! The routing function shared by all schemes: fully adaptive minimal
//! candidates from the type's adaptive VC set, then the dimension-order
//! escape candidate (Duato's protocol), or only one of the two depending on
//! the scheme's VC map.

use crate::vcmap::VcMap;
use mdd_router::{PacketState, RouteCandidate, Routing};
use mdd_topology::{MinimalHops, NodeId, Topology};

/// Routing-function object for one scheme configuration. Implements
/// `mdd-router`'s [`Routing`] trait:
///
/// * at the destination router, the only candidate is the destination
///   NIC's local port;
/// * otherwise, all `(productive direction, adaptive VC)` pairs of the
///   message type's adaptive set are offered first (rotated by the
///   router-supplied hint for load balance), followed by the
///   dimension-order escape channel of the correct dateline class;
/// * under PR's true fully adaptive routing the escape set is empty, and
///   under DOR-only configurations (partition size = `E_r`) the adaptive
///   set is empty.
#[derive(Clone, Debug)]
pub struct SchemeRouting {
    map: VcMap,
}

impl SchemeRouting {
    /// Wrap a VC map (see [`VcMap::build`]).
    pub fn new(map: VcMap) -> Self {
        SchemeRouting { map }
    }

    /// The underlying VC map.
    pub fn map(&self) -> &VcMap {
        &self.map
    }
}

impl Routing for SchemeRouting {
    fn candidates(
        &self,
        topo: &Topology,
        node: NodeId,
        pkt: &PacketState,
        rr_hint: u64,
        out: &mut Vec<RouteCandidate>,
    ) {
        if node == pkt.dst_router {
            let local = topo.nic_local_index(pkt.dst);
            out.push(RouteCandidate {
                port: topo.local_port(local),
                vc: 0,
            });
            return;
        }
        let tv = self.map.for_type(pkt.mtype);
        let mh = MinimalHops::new(topo, node, pkt.dst_router);

        // Adaptive candidates: every productive direction x adaptive VC.
        if !tv.adaptive.is_empty() {
            // At most two productive directions per dimension under
            // minimal routing; a fixed-size scratch keeps this
            // allocation-free.
            let mut dirs = [mdd_topology::PortId(0); 8];
            let mut ndirs = 0usize;
            debug_assert!(2 * topo.dims() <= dirs.len());
            for d in 0..topo.dims() {
                for dir in mh.dim(d).productive() {
                    // On a mesh the productive link always exists (minimal
                    // geometry); on a torus all links exist.
                    dirs[ndirs] = topo.port(d, dir);
                    ndirs += 1;
                }
            }
            let dirs = &dirs[..ndirs];
            let n = dirs.len() * tv.adaptive.len();
            if n > 0 {
                let rot = (rr_hint % n as u64) as usize;
                for i in 0..n {
                    let k = (rot + i) % n;
                    let port = dirs[k / tv.adaptive.len()];
                    let vc = tv.adaptive[k % tv.adaptive.len()];
                    out.push(RouteCandidate { port, vc });
                }
            }
        }

        // Escape candidate: dimension-order direction, dateline class.
        if !tv.escape.is_empty() {
            let d = mh
                .first_unaligned()
                .expect("not at destination, so some dimension is unaligned");
            let dir = mh.dim(d).dor_direction().expect("unaligned dimension");
            let class = if tv.escape.len() > 1 {
                ((pkt.crossed_dateline >> d) & 1) as usize
            } else {
                0
            };
            out.push(RouteCandidate {
                port: topo.port(d, dir),
                vc: tv.escape[class],
            });
        }
    }

    fn injection_vcs(&self, pkt: &PacketState, out: &mut Vec<u8>) {
        let tv = self.map.for_type(pkt.mtype);
        out.extend_from_slice(&tv.adaptive);
        // Injection may also use the class-0 escape channel (a packet has
        // crossed no datelines at injection). Class-1 escape is reserved to
        // preserve the dateline ordering invariant.
        if let Some(&e0) = tv.escape.first() {
            out.push(e0);
        }
    }

    /// The dateline mask is consulted exactly when the type has more than
    /// one dateline-classed escape channel (see `candidates`); fully
    /// adaptive maps (PR) and single-escape maps (meshes) never read it.
    fn dateline_sensitive(&self, mtype: mdd_protocol::MsgType) -> bool {
        self.map.for_type(mtype).escape.len() > 1
    }
}
