//! Tests for the MSI directory and coherence engine.

use crate::*;
use mdd_protocol::IdAlloc;
use mdd_traffic::AppModel;

#[test]
fn msi_transition_table() {
    let mut d = Directory::new();
    // I --read--> S, direct.
    assert_eq!(d.access(1, 100, false), (TxnClass::DirectReply, None));
    assert_eq!(d.block(100).state, LineState::Shared);
    // S --read by another--> S, direct; both sharers recorded.
    assert_eq!(d.access(2, 100, false), (TxnClass::DirectReply, None));
    assert_eq!(d.block(100).sharer_count(), 2);
    // S --write by sharer with other sharers--> invalidate one; M.
    let (class, party) = d.access(1, 100, true);
    assert_eq!(class, TxnClass::Invalidation);
    assert_eq!(party, Some(2));
    assert_eq!(d.block(100).state, LineState::Modified);
    assert_eq!(d.block(100).owner, 1);
    // M --read by another--> forwarding; downgrades to S {owner, reader}.
    let (class, party) = d.access(3, 100, false);
    assert_eq!(class, TxnClass::Forwarding);
    assert_eq!(party, Some(1));
    assert_eq!(d.block(100).state, LineState::Shared);
    assert_eq!(d.block(100).sharer_count(), 2);
    // S --write with no other sharer--> upgrade: direct.
    let mut d2 = Directory::new();
    d2.access(4, 7, false);
    assert_eq!(d2.access(4, 7, true), (TxnClass::DirectReply, None));
    assert_eq!(d2.block(7).state, LineState::Modified);
    // I --write--> M, direct.
    let mut d3 = Directory::new();
    assert_eq!(d3.access(0, 9, true), (TxnClass::DirectReply, None));
    assert_eq!(d3.block(9).state, LineState::Modified);
    // M --write by another--> forwarding (ownership transfer).
    let (class, party) = d3.access(1, 9, true);
    assert_eq!(class, TxnClass::Forwarding);
    assert_eq!(party, Some(0));
    assert_eq!(d3.block(9).owner, 1);
}

#[test]
fn owner_hit_is_direct_and_silent_statewise() {
    let mut d = Directory::new();
    d.access(5, 1, true);
    let before = d.block(1).clone();
    assert_eq!(d.access(5, 1, true), (TxnClass::DirectReply, None));
    let after = d.block(1);
    assert_eq!(before.state, after.state);
    assert_eq!(before.owner, after.owner);
}

#[test]
fn fractions_sum_to_one() {
    let mut d = Directory::new();
    for i in 0..100u64 {
        d.access((i % 8) as u32, i % 13, i % 3 == 0);
    }
    let s = d.fraction(TxnClass::DirectReply)
        + d.fraction(TxnClass::Invalidation)
        + d.fraction(TxnClass::Forwarding);
    assert!((s - 1.0).abs() < 1e-9);
    assert_eq!(d.total(), 100);
    assert!(d.lines_touched() <= 13);
}

#[test]
fn engine_emits_well_formed_requests() {
    let mut eng = CoherenceEngine::new(16, 0.05, 3);
    let mut ids = IdAlloc::new();
    let app = AppModel::water();
    let mut rng = app.rng(3);
    let mut txns = 0;
    for c in 0..5000u64 {
        let p = (c % 16) as u32;
        let (addr, write) = app.sample_access(p, 16, &mut rng);
        if let Some(acc) = eng.access(p, addr, write, c, &mut ids) {
            txns += 1;
            let m = &acc.request;
            assert_eq!(m.src.0, p);
            assert_eq!(m.dst.0, eng.home_of(addr));
            assert_ne!(m.src, m.dst, "local-home accesses are filtered out");
            assert_eq!(m.chain_pos, 0);
            let shape = eng.pattern().shape(m.shape).clone();
            match acc.class {
                TxnClass::DirectReply => assert_eq!(shape.len(), 2),
                _ => assert_eq!(shape.len(), 4),
            }
        }
    }
    assert!(txns > 100, "sharing-heavy app must generate traffic");
    assert!(eng.silent_hits > 0, "caches must hit sometimes");
}

/// Qualitative Table 1 reproduction: private-heavy apps are dominated by
/// direct replies; Water is dominated by invalidations + forwardings.
#[test]
fn table1_qualitative_shape() {
    let mut ids = IdAlloc::new();
    let mut rows = Vec::new();
    for app in AppModel::all() {
        let mut eng = CoherenceEngine::new(16, 0.05, 17);
        let mut rng = app.rng(17);
        for c in 0..60_000u64 {
            let p = (c % 16) as u32;
            let (addr, write) = app.sample_access(p, 16, &mut rng);
            let _ = eng.access(p, addr, write, c, &mut ids);
        }
        rows.push((app.name, eng.table1_row()));
    }
    for (name, (direct, inval, fwd)) in &rows {
        let s = direct + inval + fwd;
        assert!((s - 1.0).abs() < 1e-9, "{name}: fractions sum to {s}");
        match *name {
            "FFT" | "LU" | "Radix" => {
                assert!(
                    *direct > 0.85,
                    "{name}: expected direct-reply dominated, got {direct:.3}"
                );
            }
            "Water" => {
                assert!(
                    *direct < 0.45,
                    "Water: expected sharing-dominated, direct = {direct:.3}"
                );
                assert!(inval + fwd > 0.55);
            }
            _ => unreachable!(),
        }
    }
}

#[test]
fn msi_pattern_structure() {
    let pat = CoherenceEngine::msi_pattern();
    assert_eq!(pat.num_shapes(), 3);
    assert_eq!(pat.protocol().chain_length(), 4);
    assert_eq!(pat.shape(mdd_protocol::ShapeId(0)).len(), 2);
    assert_eq!(pat.shape(mdd_protocol::ShapeId(1)).len(), 4);
    assert_eq!(pat.shape(mdd_protocol::ShapeId(2)).len(), 4);
}

#[test]
fn eviction_model_regenerates_traffic() {
    // With eviction, repeated private writes keep producing transactions.
    let mut hot = CoherenceEngine::new(4, 0.5, 1);
    let mut cold = CoherenceEngine::new(4, 0.0, 1);
    let mut ids = IdAlloc::new();
    let mut hot_txns = 0;
    let mut cold_txns = 0;
    for c in 0..2000u64 {
        if hot.access(1, 6, true, c, &mut ids).is_some() {
            hot_txns += 1;
        }
        if cold.access(1, 6, true, c, &mut ids).is_some() {
            cold_txns += 1;
        }
    }
    assert!(hot_txns > 100, "evictions must regenerate misses: {hot_txns}");
    assert_eq!(cold_txns, 1, "no eviction: single cold miss then silent hits");
}

#[test]
fn trace_record_and_replay_is_deterministic() {
    use mdd_traffic::TrafficSource;
    let app = AppModel::radix();
    let log = record_app_trace(&app, 16, 5_000, 11);
    assert!(log.len() > 100, "radix generates plenty of accesses");
    // Events are time-ordered within the horizon.
    assert!(log
        .events()
        .windows(2)
        .all(|w| w[0].cycle <= w[1].cycle));
    assert!(log.events().iter().all(|e| e.cycle < 5_000 && e.proc < 16));

    // Two replays of the same trace produce identical transaction streams.
    let run = |_: ()| {
        let mut replay = TraceReplayTraffic::new(log.clone(), 16, 11);
        let mut ids = IdAlloc::new();
        let mut store = mdd_protocol::MessageStore::new();
        let mut issued = Vec::new();
        for c in 0..5_000u64 {
            replay.tick(c, &mut ids, &mut store);
            for p in 0..16 {
                while let Some(h) = replay.pop_pending(mdd_topology::NicId(p)) {
                    let m = store.remove(h);
                    issued.push((m.src.0, m.dst.0, m.shape.0));
                }
            }
        }
        assert_eq!(replay.remaining_events(), 0);
        issued
    };
    assert_eq!(run(()), run(()));
}

#[test]
fn replay_roundtrips_through_the_text_format() {
    use mdd_traffic::{TraceLog, TrafficSource};
    let app = AppModel::water();
    let log = record_app_trace(&app, 16, 2_000, 5);
    let mut buf = Vec::new();
    log.save(&mut buf).unwrap();
    let loaded = TraceLog::load(std::io::BufReader::new(&buf[..])).unwrap();
    assert_eq!(loaded.events(), log.events());
    let mut replay = TraceReplayTraffic::new(loaded, 16, 5);
    let mut ids = IdAlloc::new();
    let mut store = mdd_protocol::MessageStore::new();
    for c in 0..2_000u64 {
        replay.tick(c, &mut ids, &mut store);
    }
    assert!(replay.generated() > 0, "water traces cause transactions");
}
