//! Mapping coherent accesses onto network transactions.

use crate::directory::{Directory, TxnClass};
use mdd_protocol::{
    HopTarget, IdAlloc, Message, MsgType, PatternSpec, ProtocolSpec, TransactionShape,
};
use mdd_topology::NicId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Keep at most `cap` set bits of `mask` (lowest indices win).
fn cap_mask(mask: u64, cap: u32) -> u64 {
    let mut m = mask;
    while m.count_ones() > cap {
        // Clear the highest set bit.
        m &= !(1u64 << (63 - m.leading_zeros()));
    }
    m
}

/// A classified access that produced a network transaction.
#[derive(Clone, Debug)]
pub struct CoherentAccess {
    /// The original request message to inject at the requester.
    pub request: Message,
    /// Table 1 classification.
    pub class: TxnClass,
}

/// Drives the [`Directory`] from an access stream and emits the original
/// request message of each resulting network transaction.
#[derive(Debug)]
pub struct CoherenceEngine {
    pattern: Arc<PatternSpec>,
    directory: Directory,
    nprocs: u32,
    evict_rate: f64,
    writeback_rate: f64,
    rng: StdRng,
    /// Accesses that hit locally (no network transaction).
    pub silent_hits: u64,
    /// Accesses whose home is the issuing node (local directory access,
    /// no network transaction).
    pub local_home: u64,
}

impl CoherenceEngine {
    /// The MSI pattern: shape 0 = direct reply (`RQ→RP`), shape 1 =
    /// invalidation (`RQ→INV→ACK→RP`, carried as `RQ→FRQ→FRP→RP`), shape 2
    /// = forwarding (`RQ→FRQ→FRP→RP` through the home), matching the
    /// S-1/Censier-Feautrier structure of Figure 5.
    pub fn msi_pattern() -> PatternSpec {
        let p = ProtocolSpec::msi();
        let (rq, frq, frp, rp) = (MsgType(0), MsgType(1), MsgType(2), MsgType(3));
        let chain4 = |_: ()| {
            TransactionShape::new(
                vec![rq, frq, frp, rp],
                vec![
                    HopTarget::Home,
                    HopTarget::Owner,
                    HopTarget::Home,
                    HopTarget::Requester,
                ],
            )
        };
        PatternSpec::new(
            "MSI",
            p,
            vec![
                (
                    1.0,
                    TransactionShape::new(
                        vec![rq, rp],
                        vec![HopTarget::Home, HopTarget::Requester],
                    ),
                ),
                // Invalidation fans out to every sharer; the per-sharer
                // acks join at the home before the final reply.
                (1.0, chain4(()).with_multicast(1)),
                (1.0, chain4(())), // forwarding
            ],
        )
    }

    /// Build an engine for `nprocs` processors. `evict_rate` is the
    /// probability a locally cached line has been displaced when
    /// re-accessed (a one-parameter capacity model that makes misses
    /// recur).
    pub fn new(nprocs: u32, evict_rate: f64, seed: u64) -> Self {
        assert!((2..=64).contains(&nprocs));
        CoherenceEngine {
            pattern: Arc::new(Self::msi_pattern()),
            directory: Directory::new(),
            nprocs,
            evict_rate,
            writeback_rate: 0.3,
            rng: StdRng::seed_from_u64(seed),
            silent_hits: 0,
            local_home: 0,
        }
    }

    /// Set the probability that a Modified line has already been written
    /// back (capacity-evicted at its owner) when another node accesses it,
    /// turning a would-be forwarding into a direct reply. Models the
    /// asynchronous writeback traffic real caches generate.
    pub fn with_writeback_rate(mut self, rate: f64) -> Self {
        self.writeback_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// The MSI pattern this engine emits transactions for.
    pub fn pattern(&self) -> Arc<PatternSpec> {
        self.pattern.clone()
    }

    /// The directory (for Table 1 statistics).
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Home node of a cache line (block-interleaved).
    pub fn home_of(&self, addr: u64) -> u32 {
        (addr % self.nprocs as u64) as u32
    }

    /// Process one access. Returns the network transaction it causes, or
    /// `None` for silent cache hits and local-home accesses.
    pub fn access(
        &mut self,
        proc: u32,
        addr: u64,
        write: bool,
        cycle: u64,
        ids: &mut IdAlloc,
    ) -> Option<CoherentAccess> {
        use crate::directory::LineState;
        debug_assert!(proc < self.nprocs);
        let entry = self.directory.block(addr);
        let locally_cached = match entry.state {
            LineState::Modified => entry.owner == proc,
            LineState::Shared => !write && (entry.sharers >> proc) & 1 == 1,
            LineState::Invalid => false,
        };
        if locally_cached && self.rng.random::<f64>() >= self.evict_rate {
            self.silent_hits += 1;
            return None;
        }
        // A cached line that falls through was capacity-displaced: it must
        // be re-fetched. The directory transition for the re-access below
        // regenerates the correct traffic; the (silent or writeback)
        // eviction itself is not modelled as network traffic.
        // Asynchronous writeback: a Modified line owned elsewhere may have
        // been displaced (and written back to the home) before this access.
        if let crate::directory::LineState::Modified = entry.state {
            if entry.owner != proc && self.rng.random::<f64>() < self.writeback_rate {
                self.directory.writeback(addr);
            }
        }
        let home = self.home_of(addr);
        if home == proc {
            // Local directory access: still updates state, but produces no
            // network messages.
            self.local_home += 1;
            let _ = self.directory.access(proc, addr, write);
            return None;
        }
        let (class, party) = self.directory.access(proc, addr, write);
        let shape_id = mdd_protocol::ShapeId(match class {
            TxnClass::DirectReply => 0,
            TxnClass::Invalidation => 1,
            TxnClass::Forwarding => 2,
        });
        let owner = party.unwrap_or(home);
        // Invalidations carry the full sharer set (capped so the home's
        // output queue can always hold one invalidation per sharer; extra
        // sharers beyond the cap are folded away, a documented
        // approximation that only reduces load slightly).
        let sharers = if class == TxnClass::Invalidation {
            cap_mask(self.directory.last_invalidated, 8)
        } else {
            0
        };
        let mtype = MsgType(0);
        let request = Message {
            id: ids.next_msg(),
            txn: ids.next_txn(),
            mtype,
            shape: shape_id,
            chain_pos: 0,
            src: NicId(proc),
            dst: NicId(home),
            requester: NicId(proc),
            home: NicId(home),
            owner: NicId(owner),
            length_flits: self.pattern.protocol().length(mtype),
            created: cycle,
            is_backoff: false,
            rescued: false,
            sharers,
        };
        Some(CoherentAccess { request, class })
    }

    /// The Table 1 row measured so far: (direct, invalidation, forwarding)
    /// fractions of classified network transactions.
    pub fn table1_row(&self) -> (f64, f64, f64) {
        (
            self.directory.fraction(TxnClass::DirectReply),
            self.directory.fraction(TxnClass::Invalidation),
            self.directory.fraction(TxnClass::Forwarding),
        )
    }
}
