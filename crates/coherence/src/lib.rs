//! # mdd-coherence
//!
//! A full-map directory-based MSI cache-coherence engine (Figure 5), used
//! by the trace-driven characterization experiments (Section 4.2). It
//! tracks per-line directory state (Invalid / Shared / Modified, the owner
//! and the sharer set) across processor accesses and classifies each
//! resulting transaction the way Table 1 does:
//!
//! * **Direct Reply** — the home node satisfies the request itself,
//! * **Invalidation** — a write hits a line shared by other caches; the
//!   home invalidates a sharer before replying,
//! * **Forwarding** — the line is owned Modified by a third node; the home
//!   forwards the request to the owner.
//!
//! The engine maps each classified transaction onto the matching message
//! dependency chain of the generic protocol, which the network simulator
//! then carries flit by flit. As in the paper's synthetic patterns,
//! multi-sharer invalidations are serialized through one representative
//! sharer ("it is assumed that there is only one sharer node for each
//! block in a shared state; more sharers could be modeled with the effect
//! of increasing the network load").

#![warn(missing_docs)]

mod directory;
mod engine;
mod replay;
mod traffic;

pub use directory::{BlockState, Directory, LineState, TxnClass};
pub use engine::{CoherenceEngine, CoherentAccess};
pub use replay::{record_app_trace, TraceReplayTraffic};
pub use traffic::CoherentTraffic;

#[cfg(test)]
mod tests;
