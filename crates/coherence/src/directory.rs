//! Full-map directory state and the MSI transition function.

use std::collections::HashMap;

/// MSI state of a cache line at its home directory.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LineState {
    /// No remote copy: the home memory is the only holder.
    #[default]
    Invalid,
    /// One or more caches hold read-only copies.
    Shared,
    /// Exactly one cache holds the line writable.
    Modified,
}

/// Directory entry for one cache line.
#[derive(Clone, Debug, Default)]
pub struct BlockState {
    /// Current MSI state.
    pub state: LineState,
    /// Owner when `Modified`.
    pub owner: u32,
    /// Full-map sharer bit vector (bit `p` set when processor `p` holds a
    /// shared copy); supports up to 64 processors, which covers every
    /// configuration in the paper.
    pub sharers: u64,
}

impl BlockState {
    /// Number of sharers recorded.
    pub fn sharer_count(&self) -> u32 {
        self.sharers.count_ones()
    }

    /// An arbitrary (lowest-index) sharer other than `exclude`, if any.
    pub fn a_sharer_not(&self, exclude: u32) -> Option<u32> {
        let mask = self.sharers & !(1u64 << exclude);
        if mask == 0 {
            None
        } else {
            Some(mask.trailing_zeros())
        }
    }
}

/// How the home node had to satisfy a request — Table 1's classification.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TxnClass {
    /// Home replies directly (chain length 2).
    DirectReply,
    /// Home invalidates a sharer first (chain length up to 4).
    Invalidation,
    /// Home forwards to the Modified owner (chain length up to 4).
    Forwarding,
}

/// The (logically distributed, physically centralized in the simulator)
/// full-map directory for all cache lines, plus classification counters.
#[derive(Clone, Debug, Default)]
pub struct Directory {
    blocks: HashMap<u64, BlockState>,
    /// Count of transactions per class.
    pub counts: HashMap<TxnClass, u64>,
    /// Sharer mask cleared by the most recent invalidation (consumed by
    /// the engine to build multicast invalidation transactions).
    pub last_invalidated: u64,
}

impl Directory {
    /// Empty directory (all lines Invalid at home).
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to a line's entry (default state if untouched).
    pub fn block(&self, addr: u64) -> BlockState {
        self.blocks.get(&addr).cloned().unwrap_or_default()
    }

    /// Apply one access by `proc` to `addr` and return the transaction
    /// classification plus the remote party involved (`None` for direct
    /// replies; the invalidated sharer or forwarding owner otherwise).
    ///
    /// State transitions follow the standard full-map MSI protocol:
    ///
    /// | state | access | action | next state |
    /// |---|---|---|---|
    /// | I | read  | direct reply           | S {proc} |
    /// | I | write | direct reply           | M proc |
    /// | S | read  | direct reply           | S +proc |
    /// | S (only self) | write | direct (upgrade) | M proc |
    /// | S (others compared) | write | invalidate sharers | M proc |
    /// | M (self)  | any  | cache hit at owner — direct reply | M proc |
    /// | M (other) | read | forward to owner; owner downgrades | S {owner, proc} |
    /// | M (other) | write| forward to owner; owner invalidates | M proc |
    pub fn access(&mut self, proc: u32, addr: u64, write: bool) -> (TxnClass, Option<u32>) {
        debug_assert!(proc < 64, "full-map vector supports 64 processors");
        let entry = self.blocks.entry(addr).or_default();
        let bit = 1u64 << proc;
        let (class, party) = match entry.state {
            LineState::Invalid => {
                if write {
                    entry.state = LineState::Modified;
                    entry.owner = proc;
                    entry.sharers = 0;
                } else {
                    entry.state = LineState::Shared;
                    entry.sharers = bit;
                }
                (TxnClass::DirectReply, None)
            }
            LineState::Shared => {
                if write {
                    let other = entry.a_sharer_not(proc);
                    self.last_invalidated = entry.sharers & !(1u64 << proc);
                    entry.state = LineState::Modified;
                    entry.owner = proc;
                    entry.sharers = 0;
                    match other {
                        Some(s) => (TxnClass::Invalidation, Some(s)),
                        None => (TxnClass::DirectReply, None), // upgrade
                    }
                } else {
                    entry.sharers |= bit;
                    (TxnClass::DirectReply, None)
                }
            }
            LineState::Modified => {
                if entry.owner == proc {
                    // Hit in the owner's cache: no network transaction is
                    // strictly required, but the trace records the access;
                    // treat it as a silent hit via DirectReply with no
                    // remote party and no directory change.
                    (TxnClass::DirectReply, None)
                } else {
                    let owner = entry.owner;
                    if write {
                        entry.owner = proc;
                        entry.sharers = 0;
                    } else {
                        entry.state = LineState::Shared;
                        entry.sharers = (1u64 << owner) | bit;
                    }
                    (TxnClass::Forwarding, Some(owner))
                }
            }
        };
        *self.counts.entry(class).or_insert(0) += 1;
        (class, party)
    }

    /// Apply a capacity writeback of `addr`: the owner's dirty copy
    /// returns to the home and the directory entry becomes Invalid. Not a
    /// classified transaction (writeback traffic is not a response to a
    /// request).
    pub fn writeback(&mut self, addr: u64) {
        if let Some(e) = self.blocks.get_mut(&addr) {
            e.state = LineState::Invalid;
            e.sharers = 0;
        }
    }

    /// Total classified transactions.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Fraction of transactions in `class`.
    pub fn fraction(&self, class: TxnClass) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            *self.counts.get(&class).unwrap_or(&0) as f64 / t as f64
        }
    }

    /// Number of distinct lines touched.
    pub fn lines_touched(&self) -> usize {
        self.blocks.len()
    }
}
