//! Trace recording and replay.
//!
//! The paper's methodology (Section 4.2.1) gathers each application's data
//! accesses "into a trace file along with timing information in order to
//! preserve traffic burstiness", then drives the network simulator from
//! the trace. [`record_app_trace`] produces such a trace from an
//! application model; [`TraceReplayTraffic`] replays one through the MSI
//! directory engine as a [`TrafficSource`].

use crate::engine::CoherenceEngine;
use mdd_protocol::{IdAlloc, MessageStore, MsgHandle};
use mdd_topology::NicId;
use mdd_traffic::{AppModel, TraceEvent, TraceLog, TrafficSource};
use rand::Rng;
use std::collections::VecDeque;

/// Record `horizon` cycles of `app`'s access stream for `nprocs`
/// processors into a timing-preserving trace.
///
/// The access intensity follows the application's load schedule using the
/// same first-order rate estimate the live source starts from; replaying
/// the trace through [`TraceReplayTraffic`] reproduces the same bursts at
/// the same cycles, deterministically.
pub fn record_app_trace(app: &AppModel, nprocs: u32, horizon: u64, seed: u64) -> TraceLog {
    let mut rng = app.rng(seed);
    let mut log = TraceLog::new();
    // Static estimate: roughly a third of accesses miss and cost ~24
    // injected flits (matches CoherentTraffic's initial controller guess).
    for cycle in 0..horizon {
        let progress = cycle as f64 / horizon as f64;
        let rate = (app.load_at(progress) / (0.33 * 24.0)).clamp(0.0, 1.0);
        for proc in 0..nprocs {
            if rng.random::<f64>() < rate {
                let (addr, write) = app.sample_access(proc, nprocs, &mut rng);
                log.push(TraceEvent {
                    cycle,
                    proc,
                    addr,
                    write,
                });
            }
        }
    }
    log
}

/// A [`TrafficSource`] replaying a recorded access trace through the MSI
/// directory engine, issuing the resulting network transactions at the
/// recorded cycles.
#[derive(Debug)]
pub struct TraceReplayTraffic {
    engine: CoherenceEngine,
    log: TraceLog,
    next_event: usize,
    pending: Vec<VecDeque<MsgHandle>>,
    generated_txns: u64,
}

impl TraceReplayTraffic {
    /// Replay `log` over `nprocs` processors.
    pub fn new(log: TraceLog, nprocs: u32, seed: u64) -> Self {
        TraceReplayTraffic {
            engine: CoherenceEngine::new(nprocs, 0.05, seed),
            log,
            next_event: 0,
            pending: (0..nprocs).map(|_| VecDeque::new()).collect(),
            generated_txns: 0,
        }
    }

    /// The coherence engine (for Table 1-style statistics).
    pub fn engine(&self) -> &CoherenceEngine {
        &self.engine
    }

    /// Events not yet replayed.
    pub fn remaining_events(&self) -> usize {
        self.log.len() - self.next_event
    }

    /// Convenience: record a fresh trace for `app` and wrap it for replay.
    pub fn from_app(app: &AppModel, nprocs: u32, horizon: u64, seed: u64) -> Self {
        let log = record_app_trace(app, nprocs, horizon, seed);
        let mut s = Self::new(log, nprocs, seed);
        s.engine = CoherenceEngine::new(nprocs, 0.05, seed).with_writeback_rate(app.writeback_rate);
        s
    }
}

impl TrafficSource for TraceReplayTraffic {
    fn tick(&mut self, cycle: u64, ids: &mut IdAlloc, store: &mut MessageStore) {
        while self.next_event < self.log.len() {
            let ev = self.log.events()[self.next_event];
            if ev.cycle > cycle {
                break;
            }
            self.next_event += 1;
            if let Some(acc) = self.engine.access(ev.proc, ev.addr, ev.write, cycle, ids) {
                self.pending[ev.proc as usize].push_back(store.insert(acc.request));
                self.generated_txns += 1;
            }
        }
    }

    fn pending_head(&self, nic: NicId) -> Option<MsgHandle> {
        self.pending[nic.index()].front().copied()
    }

    fn pop_pending(&mut self, nic: NicId) -> Option<MsgHandle> {
        self.pending[nic.index()].pop_front()
    }

    fn backlog(&self) -> usize {
        self.pending.iter().map(VecDeque::len).sum()
    }

    fn generated(&self) -> u64 {
        self.generated_txns
    }
}
