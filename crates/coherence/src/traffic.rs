//! Coherence-driven traffic: the trace-driven-experiment stand-in.
//!
//! Each modelled application (Section 4.2 / DESIGN.md substitution table)
//! emits a memory-access stream whose intensity follows the application's
//! load schedule; the MSI directory engine turns accesses into network
//! transactions. A proportional controller adapts the access rate so the
//! *achieved* injected network load tracks the schedule even as cache hit
//! rates drift — this is what lets the Figure 6 load histograms be
//! reproduced without the original RSIM traces.

use crate::engine::CoherenceEngine;
use mdd_protocol::{IdAlloc, Message, MessageStore, MsgHandle};
use mdd_topology::NicId;
use mdd_traffic::{AppModel, TrafficSource};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::VecDeque;

/// Control-window length in cycles for rate adaptation and load sampling.
const WINDOW: u64 = 500;

/// A [`TrafficSource`] that drives the network from a coherence-filtered
/// application access stream.
#[derive(Debug)]
pub struct CoherentTraffic {
    engine: CoherenceEngine,
    app: AppModel,
    rng: StdRng,
    pending: Vec<VecDeque<MsgHandle>>,
    nprocs: u32,
    horizon: u64,
    access_rate: f64,
    window_flits: u64,
    generated_txns: u64,
    /// Achieved injected load (flits/node/cycle) per control window — the
    /// Figure 6 measurement series.
    pub load_samples: Vec<f64>,
}

impl CoherentTraffic {
    /// Drive `nprocs` processors with `app`'s access behaviour for a
    /// planned run of `horizon` cycles (the schedule's progress axis).
    pub fn new(app: AppModel, nprocs: u32, horizon: u64, seed: u64) -> Self {
        let engine =
            CoherenceEngine::new(nprocs, 0.05, seed).with_writeback_rate(app.writeback_rate);
        let rng = app.rng(seed);
        // Initial guess: roughly a third of accesses cause transactions of
        // about 24 flits; the controller converges quickly regardless.
        let initial_rate = app.load_at(0.0) / (0.33 * 24.0);
        CoherentTraffic {
            engine,
            app,
            rng,
            pending: (0..nprocs).map(|_| VecDeque::new()).collect(),
            nprocs,
            horizon: horizon.max(1),
            access_rate: initial_rate.clamp(1e-6, 1.0),
            window_flits: 0,
            generated_txns: 0,
            load_samples: Vec::new(),
        }
    }

    /// The coherence engine (for Table 1 statistics).
    pub fn engine(&self) -> &CoherenceEngine {
        &self.engine
    }

    /// The application being modelled.
    pub fn app(&self) -> &AppModel {
        &self.app
    }

    /// Mean achieved load over all completed windows.
    pub fn mean_load(&self) -> f64 {
        if self.load_samples.is_empty() {
            0.0
        } else {
            self.load_samples.iter().sum::<f64>() / self.load_samples.len() as f64
        }
    }

    fn txn_flits(&self, m: &Message) -> u64 {
        let pat = self.engine.pattern();
        let shape = pat.shape(m.shape);
        let base: u64 = shape
            .chain
            .iter()
            .map(|&t| pat.protocol().length(t) as u64)
            .sum();
        // Multicast hops replicate the branch (invalidation + ack) per
        // extra sharer.
        match shape.multicast_at {
            Some(pos) if m.fanout() > 1 => {
                let branch = pat.protocol().length(shape.mtype(pos)) as u64
                    + pat.protocol().length(shape.mtype(pos + 1)) as u64;
                base + (m.fanout() as u64 - 1) * branch
            }
            _ => base,
        }
    }
}

impl TrafficSource for CoherentTraffic {
    fn tick(&mut self, cycle: u64, ids: &mut IdAlloc, store: &mut MessageStore) {
        if cycle > 0 && cycle.is_multiple_of(WINDOW) {
            let achieved = self.window_flits as f64 / (WINDOW * self.nprocs as u64) as f64;
            self.load_samples.push(achieved);
            self.window_flits = 0;
            let progress = (cycle % self.horizon) as f64 / self.horizon as f64;
            let target = self.app.load_at(progress);
            if achieved > 1e-9 {
                let ratio = (target / achieved).clamp(0.5, 2.0);
                self.access_rate = (self.access_rate * ratio).clamp(1e-6, 1.0);
            } else if target > 0.0 {
                self.access_rate = (self.access_rate * 2.0).min(1.0);
            }
        }
        for proc in 0..self.nprocs {
            if self.rng.random::<f64>() >= self.access_rate {
                continue;
            }
            let (addr, write) = self.app.sample_access(proc, self.nprocs, &mut self.rng);
            if let Some(acc) = self.engine.access(proc, addr, write, cycle, ids) {
                self.window_flits += self.txn_flits(&acc.request);
                self.pending[proc as usize].push_back(store.insert(acc.request));
                self.generated_txns += 1;
            }
        }
    }

    fn pending_head(&self, nic: NicId) -> Option<MsgHandle> {
        self.pending[nic.index()].front().copied()
    }

    fn pop_pending(&mut self, nic: NicId) -> Option<MsgHandle> {
        self.pending[nic.index()].pop_front()
    }

    fn backlog(&self) -> usize {
        self.pending.iter().map(VecDeque::len).sum()
    }

    fn generated(&self) -> u64 {
        self.generated_txns
    }
}
