//! Streaming quantile estimation (the P² algorithm of Jain & Chlamtac),
//! used for tail-latency reporting without storing samples.

/// A single-quantile P² estimator: maintains five markers whose heights
/// converge on the `q`-quantile of the stream.
///
/// ```
/// use mdd_stats::P2Quantile;
/// let mut q = P2Quantile::new(0.5);
/// for i in 0..1001 { q.add(f64::from(i)); }
/// assert!((q.estimate() - 500.0).abs() < 20.0);
/// ```
#[derive(Clone, Debug)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based counts).
    pos: [f64; 5],
    /// Desired marker positions.
    want: [f64; 5],
    /// Desired position increments per observation.
    inc: [f64; 5],
    n: u64,
    /// First five observations, buffered until initialization.
    boot: Vec<f64>,
}

impl P2Quantile {
    /// Estimator for the `q`-quantile, `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            pos: [1.0, 2.0, 3.0, 4.0, 5.0],
            want: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            inc: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            n: 0,
            boot: Vec::with_capacity(5),
        }
    }

    /// Observations seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The quantile this estimator tracks.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        if self.boot.len() < 5 {
            self.boot.push(x);
            if self.boot.len() == 5 {
                self.boot.sort_by(|a, b| a.partial_cmp(b).unwrap());
                self.heights.copy_from_slice(&self.boot);
            }
            return;
        }
        // Find the cell containing x and bump marker positions.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            (0..4)
                .find(|&i| x < self.heights[i + 1])
                .expect("x within [h0, h4)")
        };
        for i in (k + 1)..5 {
            self.pos[i] += 1.0;
        }
        for i in 0..5 {
            self.want[i] += self.inc[i];
        }
        // Adjust interior markers with the piecewise-parabolic formula.
        for i in 1..4 {
            let d = self.want[i] - self.pos[i];
            let right = self.pos[i + 1] - self.pos[i];
            let left = self.pos[i - 1] - self.pos[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let s = d.signum();
                let cand = self.parabolic(i, s);
                let new_h = if self.heights[i - 1] < cand && cand < self.heights[i + 1] {
                    cand
                } else {
                    self.linear(i, s)
                };
                self.heights[i] = new_h;
                self.pos[i] += s;
            }
        }
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let p = &self.pos;
        let h = &self.heights;
        h[i] + s / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + s) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - s) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = (i as f64 + s) as usize;
        self.heights[i]
            + s * (self.heights[j] - self.heights[i]) / (self.pos[j] - self.pos[i])
    }

    /// Current estimate (exact for fewer than five observations).
    pub fn estimate(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        if self.boot.len() < 5 {
            let mut v = self.boot.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let idx = ((self.q * (v.len() as f64 - 1.0)).round() as usize).min(v.len() - 1);
            return v[idx];
        }
        self.heights[2]
    }
}

/// Median / p95 / p99 latency tracker.
#[derive(Clone, Debug)]
pub struct LatencyQuantiles {
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
}

impl Default for LatencyQuantiles {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyQuantiles {
    /// Fresh tracker.
    pub fn new() -> Self {
        LatencyQuantiles {
            p50: P2Quantile::new(0.5),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
        }
    }

    /// Record one latency sample.
    pub fn add(&mut self, x: f64) {
        self.p50.add(x);
        self.p95.add(x);
        self.p99.add(x);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.p50.count()
    }

    /// `(p50, p95, p99)` estimates.
    pub fn estimates(&self) -> (f64, f64, f64) {
        (
            self.p50.estimate(),
            self.p95.estimate(),
            self.p99.estimate(),
        )
    }
}
