//! Tests for the measurement substrate.

use crate::*;

#[test]
fn online_stats_basic() {
    let mut s = OnlineStats::new();
    for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
        s.add(x);
    }
    assert_eq!(s.count(), 8);
    assert!((s.mean() - 5.0).abs() < 1e-12);
    assert!((s.variance() - 4.0).abs() < 1e-12);
    assert!((s.stddev() - 2.0).abs() < 1e-12);
    assert_eq!(s.min(), Some(2.0));
    assert_eq!(s.max(), Some(9.0));
}

#[test]
fn online_stats_empty() {
    let s = OnlineStats::new();
    assert_eq!(s.count(), 0);
    assert_eq!(s.mean(), 0.0);
    assert_eq!(s.variance(), 0.0);
    assert_eq!(s.min(), None);
    assert_eq!(s.max(), None);
}

#[test]
fn online_stats_merge_matches_sequential() {
    let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
    let mut all = OnlineStats::new();
    for &x in &xs {
        all.add(x);
    }
    let mut a = OnlineStats::new();
    let mut b = OnlineStats::new();
    for &x in &xs[..37] {
        a.add(x);
    }
    for &x in &xs[37..] {
        b.add(x);
    }
    a.merge(&b);
    assert_eq!(a.count(), all.count());
    assert!((a.mean() - all.mean()).abs() < 1e-9);
    assert!((a.variance() - all.variance()).abs() < 1e-9);
    assert_eq!(a.min(), all.min());
    assert_eq!(a.max(), all.max());
}

#[test]
fn histogram_bins_and_fractions() {
    let mut h = Histogram::new(0.0, 1.0, 10);
    for i in 0..100 {
        h.add(i as f64 / 100.0);
    }
    h.add(1.5); // overflow
    h.add(-0.1); // underflow
    assert_eq!(h.total(), 102);
    assert_eq!(h.bins(), 10);
    assert_eq!(h.count(0), 10);
    assert_eq!(h.overflow(), 1);
    assert!((h.fraction(0) - 10.0 / 102.0).abs() < 1e-12);
    // fraction_below(0.5): underflow + 50 in-range observations.
    assert!((h.fraction_below(0.5) - 51.0 / 102.0).abs() < 1e-12);
    let (lo, hi) = h.bin_range(3);
    assert!((lo - 0.3).abs() < 1e-12 && (hi - 0.4).abs() < 1e-12);
}

#[test]
fn histogram_approx_mean() {
    let mut h = Histogram::new(0.0, 10.0, 100);
    for _ in 0..1000 {
        h.add(5.0);
    }
    assert!((h.approx_mean() - 5.05).abs() < 0.06);
}

#[test]
fn bnf_curve_metrics() {
    let mut c = BnfCurve::new("PR");
    for (l, t, lat) in [
        (0.1, 0.1, 50.0),
        (0.2, 0.2, 60.0),
        (0.3, 0.29, 90.0),
        (0.4, 0.33, 200.0),
        (0.5, 0.31, 400.0),
    ] {
        c.push(BnfPoint {
            applied_load: l,
            throughput: t,
            latency: lat,
            messages_delivered: 1000,
            deadlocks: if l > 0.35 { 2 } else { 0 },
        });
    }
    assert!((c.saturation_throughput() - 0.33).abs() < 1e-12);
    assert_eq!(c.saturation_load(150.0), Some(0.4));
    assert_eq!(c.latency_at_load(0.25), Some(60.0));
    assert_eq!(c.latency_at_load(0.05), None);
    assert_eq!(c.total_deadlocks(), 4, "two each at loads 0.4 and 0.5");
    // Interpolation half-way between the first two points.
    let lat = c.latency_at_throughput(0.15).unwrap();
    assert!((lat - 55.0).abs() < 1e-9);
}

#[test]
fn normalized_deadlocks() {
    let p = BnfPoint {
        applied_load: 0.4,
        throughput: 0.3,
        latency: 100.0,
        messages_delivered: 500,
        deadlocks: 5,
    };
    assert!((p.normalized_deadlocks() - 0.01).abs() < 1e-12);
    let empty = BnfPoint {
        messages_delivered: 0,
        ..p
    };
    assert_eq!(empty.normalized_deadlocks(), 0.0);
}

#[test]
fn table_render_and_csv() {
    let mut t = Table::new(vec!["scheme", "load", "latency"]);
    t.row(vec!["PR", "0.10", "52.1"]);
    t.row(vec!["DR", "0.10", "61.9"]);
    let s = t.render();
    assert!(s.contains("scheme"));
    assert!(s.lines().count() == 4);
    // Columns right-aligned, separator present.
    assert!(s.lines().nth(1).unwrap().starts_with('-'));
    let csv = t.to_csv();
    assert_eq!(csv.lines().next().unwrap(), "scheme,load,latency");
    assert_eq!(csv.lines().count(), 3);
}

#[test]
fn csv_quoting() {
    let mut t = Table::new(vec!["a", "b"]);
    t.row(vec!["x,y", "he said \"hi\""]);
    let csv = t.to_csv();
    assert!(csv.contains("\"x,y\""));
    assert!(csv.contains("\"he said \"\"hi\"\"\""));
}

#[test]
fn render_csv_precision() {
    let s = render_csv(&["x", "y"], &[vec![1.23456, 2.0]], 2);
    assert!(s.contains("1.23,2.00"));
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn welford_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut s = OnlineStats::new();
            for &x in &xs { s.add(x); }
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
            prop_assert!((s.variance() - var).abs() < 1e-4 * (1.0 + var));
        }

        #[test]
        fn histogram_conserves_observations(xs in proptest::collection::vec(-2.0f64..4.0, 0..500)) {
            let mut h = Histogram::new(0.0, 1.0, 7);
            for &x in &xs { h.add(x); }
            let binned: u64 = (0..h.bins()).map(|i| h.count(i)).sum();
            prop_assert_eq!(h.total() as usize, xs.len());
            prop_assert!(binned <= h.total());
            prop_assert!((h.fraction_below(2.0) - (h.total() - h.overflow()) as f64
                / h.total().max(1) as f64).abs() < 1e-9);
        }
    }
}

#[test]
fn bnf_plot_renders_axes_and_legend() {
    let mut c1 = BnfCurve::new("PR");
    let mut c2 = BnfCurve::new("DR");
    for (i, lat) in [(1, 30.0), (2, 40.0), (3, 90.0)] {
        c1.push(BnfPoint {
            applied_load: i as f64 * 0.1,
            throughput: i as f64 * 0.1,
            latency: lat,
            messages_delivered: 10,
            deadlocks: 0,
        });
        c2.push(BnfPoint {
            applied_load: i as f64 * 0.1,
            throughput: i as f64 * 0.08,
            latency: lat * 1.5,
            messages_delivered: 10,
            deadlocks: 0,
        });
    }
    let s = render_bnf(&[c1, c2], 40, 12);
    assert!(s.contains("* = PR"));
    assert!(s.contains("o = DR"));
    assert!(s.contains("latency"));
    assert!(s.lines().count() > 14);
    // Both glyphs appear in the grid.
    assert!(s.contains('*') && s.contains('o'));
}

#[test]
fn bnf_plot_empty_is_graceful() {
    assert_eq!(render_bnf(&[], 40, 12), "(no data)\n");
    let empty = BnfCurve::new("X");
    assert_eq!(render_bnf(&[empty], 40, 12), "(no data)\n");
}

#[test]
fn p2_quantile_tracks_uniform_stream() {
    // Deterministic LCG stream over [0, 1000).
    let mut x = 42u64;
    let mut q50 = P2Quantile::new(0.5);
    let mut q95 = P2Quantile::new(0.95);
    for _ in 0..50_000 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let v = (x >> 33) as f64 % 1000.0;
        q50.add(v);
        q95.add(v);
    }
    assert!((q50.estimate() - 500.0).abs() < 25.0, "p50 = {}", q50.estimate());
    assert!((q95.estimate() - 950.0).abs() < 25.0, "p95 = {}", q95.estimate());
    assert_eq!(q50.count(), 50_000);
}

#[test]
fn p2_quantile_small_samples_exact() {
    let mut q = P2Quantile::new(0.5);
    assert_eq!(q.estimate(), 0.0);
    q.add(10.0);
    assert_eq!(q.estimate(), 10.0);
    q.add(20.0);
    q.add(30.0);
    assert_eq!(q.estimate(), 20.0, "exact median of 3");
}

#[test]
fn latency_quantiles_are_ordered() {
    let mut lq = LatencyQuantiles::new();
    let mut x = 7u64;
    for _ in 0..20_000 {
        x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        // Skewed (quadratic) distribution, like real latency tails.
        let u = ((x >> 33) as f64 % 1000.0) / 1000.0;
        lq.add(20.0 + 500.0 * u * u);
    }
    let (p50, p95, p99) = lq.estimates();
    assert!(p50 < p95 && p95 < p99, "({p50:.1}, {p95:.1}, {p99:.1})");
    assert!(p50 > 20.0 && p99 < 520.0 + 1.0);
}

mod quantile_properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// P2 estimates stay within the observed range and close to the
        /// exact quantile for moderately sized streams.
        #[test]
        fn p2_close_to_exact(mut xs in proptest::collection::vec(0.0f64..1e4, 100..2000),
                             qsel in 1usize..4) {
            let q = [0.25, 0.5, 0.9][qsel - 1];
            let mut est = P2Quantile::new(q);
            for &x in &xs { est.add(x); }
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let exact = xs[((q * (xs.len() as f64 - 1.0)) as usize).min(xs.len() - 1)];
            let lo = xs[0];
            let hi = xs[xs.len() - 1];
            let e = est.estimate();
            prop_assert!(e >= lo && e <= hi, "estimate out of range");
            // Tolerance: a band around the exact quantile (P2 is an
            // approximation; use rank-distance tolerance of 15%).
            let band = 0.15 * xs.len() as f64;
            let rank = xs.iter().filter(|&&v| v <= e).count() as f64;
            let exact_rank = q * xs.len() as f64;
            prop_assert!((rank - exact_rank).abs() <= band.max(10.0),
                "rank {rank} too far from {exact_rank} (exact value {exact})");
        }
    }
}
