//! Terminal rendering of Burton-Normal-Form curves.
//!
//! The paper's figures plot delivered throughput (x) against average
//! latency (y); [`render_bnf`] draws the same axes as a character grid so
//! the experiment binaries give an immediate visual read without external
//! tooling.

use crate::bnf::BnfCurve;

/// Glyphs assigned to curves in order.
const GLYPHS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// Render `curves` as an ASCII scatter plot of latency (y, log-ish
/// clamped) versus throughput (x), `width` x `height` characters.
pub fn render_bnf(curves: &[BnfCurve], width: usize, height: usize) -> String {
    let width = width.max(20);
    let height = height.max(8);
    let pts: Vec<(f64, f64, usize)> = curves
        .iter()
        .enumerate()
        .flat_map(|(ci, c)| {
            c.points
                .iter()
                .map(move |p| (p.throughput, p.latency, ci))
        })
        .collect();
    if pts.is_empty() {
        return String::from("(no data)\n");
    }
    let x_max = pts.iter().map(|p| p.0).fold(0.0, f64::max) * 1.05 + 1e-9;
    // Clamp the y axis at 4x the highest below-saturation latency so the
    // vertical blow-up at saturation doesn't flatten the readable region.
    let y_all_max = pts.iter().map(|p| p.1).fold(0.0, f64::max);
    let y_med = {
        let mut ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        ys.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ys[ys.len() / 2]
    };
    let y_max = (y_med * 4.0).min(y_all_max).max(1e-9);

    let mut grid = vec![vec![' '; width]; height];
    let mut clipped = false;
    for &(x, y, ci) in &pts {
        let gx = ((x / x_max) * (width - 1) as f64).round() as usize;
        let gy = if y >= y_max {
            clipped = true;
            0
        } else {
            (height - 1) - ((y / y_max) * (height - 1) as f64).round() as usize
        };
        let glyph = GLYPHS[ci % GLYPHS.len()];
        let cell = &mut grid[gy.min(height - 1)][gx.min(width - 1)];
        // Overlapping curves show the later curve's glyph with a marker.
        *cell = if *cell == ' ' { glyph } else { '?' };
    }

    let mut out = String::new();
    out.push_str(&format!(
        "latency (cycles, clipped at {y_max:.0}{}) vs throughput (flits/node/cycle)\n",
        if clipped { ", ^ = off-scale" } else { "" }
    ));
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_max:>7.0} |")
        } else if i == height - 1 {
            format!("{:>7.0} |", 0.0)
        } else {
            String::from("        |")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("        +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "         0{:>w$.3}\n",
        x_max,
        w = width.saturating_sub(1)
    ));
    for (ci, c) in curves.iter().enumerate() {
        out.push_str(&format!(
            "         {} = {}  (saturation {:.4})\n",
            GLYPHS[ci % GLYPHS.len()],
            c.label,
            c.saturation_throughput()
        ));
    }
    out
}
