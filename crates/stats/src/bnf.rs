//! Burton Normal Form performance curves.
//!
//! Following the paper (and Duato/Yalamanchili/Ni): each point of a curve is
//! the (delivered throughput, average latency) pair measured at one applied
//! load; curves are plotted for increasing applied load up to just beyond
//! saturation.

/// One measured operating point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BnfPoint {
    /// Applied load, in flits/node/cycle.
    pub applied_load: f64,
    /// Delivered (accepted) traffic, normalized flits/node/cycle.
    pub throughput: f64,
    /// Average message latency in cycles, including queue waiting time.
    pub latency: f64,
    /// Messages delivered during the measurement window.
    pub messages_delivered: u64,
    /// Message-dependent deadlocks detected during the window.
    pub deadlocks: u64,
}

impl BnfPoint {
    /// Normalized number of deadlocks: deadlocks per delivered message
    /// (the paper's deadlock-frequency metric, Section 4.1).
    pub fn normalized_deadlocks(&self) -> f64 {
        if self.messages_delivered == 0 {
            0.0
        } else {
            self.deadlocks as f64 / self.messages_delivered as f64
        }
    }
}

/// A labelled Burton-Normal-Form curve (one scheme/pattern/VC-count line of
/// a paper figure).
#[derive(Clone, Debug)]
pub struct BnfCurve {
    /// Curve label (e.g. `"PR"`, `"DR"`, `"SA"`).
    pub label: String,
    /// Measured points in order of increasing applied load.
    pub points: Vec<BnfPoint>,
}

impl BnfCurve {
    /// Empty curve with a label.
    pub fn new(label: impl Into<String>) -> Self {
        BnfCurve {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point (points must be pushed in increasing applied load).
    pub fn push(&mut self, p: BnfPoint) {
        self.points.push(p);
    }

    /// Assemble a curve from an arbitrary point set: points are sorted by
    /// applied load and exact-duplicate loads collapse to the last one
    /// given. This is the entry point for *partial* result sets — a sweep
    /// in which some points failed, or a mix of freshly simulated and
    /// cache-served points arriving out of order — where the push-in-order
    /// contract of [`BnfCurve::push`] cannot be met.
    pub fn assemble(label: impl Into<String>, points: impl IntoIterator<Item = BnfPoint>) -> Self {
        let mut points: Vec<BnfPoint> = points.into_iter().collect();
        points.sort_by(|a, b| {
            a.applied_load
                .partial_cmp(&b.applied_load)
                .expect("applied loads are finite")
        });
        points.dedup_by(|later, earlier| {
            if later.applied_load == earlier.applied_load {
                *earlier = *later;
                true
            } else {
                false
            }
        });
        BnfCurve {
            label: label.into(),
            points,
        }
    }

    /// Peak delivered throughput over the curve — the saturation
    /// throughput, the paper's primary comparison metric.
    pub fn saturation_throughput(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.throughput)
            .fold(0.0, f64::max)
    }

    /// The lowest-load point whose latency exceeds `threshold` cycles, as a
    /// proxy for the saturation load.
    pub fn saturation_load(&self, threshold: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.latency > threshold)
            .map(|p| p.applied_load)
    }

    /// Average latency at the largest applied load not exceeding `load`
    /// (for comparing schemes at equal load below saturation).
    pub fn latency_at_load(&self, load: f64) -> Option<f64> {
        self.points
            .iter()
            .rfind(|p| p.applied_load <= load + 1e-12)
            .map(|p| p.latency)
    }

    /// Linearly interpolated latency at a given delivered throughput, if
    /// the curve reaches it.
    pub fn latency_at_throughput(&self, tput: f64) -> Option<f64> {
        let mut prev: Option<&BnfPoint> = None;
        for p in &self.points {
            if p.throughput >= tput {
                return Some(match prev {
                    None => p.latency,
                    Some(q) => {
                        let span = p.throughput - q.throughput;
                        if span <= 1e-12 {
                            p.latency
                        } else {
                            let t = (tput - q.throughput) / span;
                            q.latency + t * (p.latency - q.latency)
                        }
                    }
                });
            }
            prev = Some(p);
        }
        None
    }

    /// Total deadlocks observed across the curve.
    pub fn total_deadlocks(&self) -> u64 {
        self.points.iter().map(|p| p.deadlocks).sum()
    }
}
