//! Fixed-bin histograms (used for the Figure 6 load-rate distributions).

/// A histogram over `[lo, hi)` with uniformly sized bins plus an overflow
/// bin.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    overflow: u64,
    underflow: u64,
    total: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `bins` uniform bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0, "invalid histogram range");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            overflow: 0,
            underflow: 0,
            total: 0,
        }
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let nbins = self.counts.len();
            let w = (self.hi - self.lo) / nbins as f64;
            let idx = (((x - self.lo) / w) as usize).min(nbins - 1);
            self.counts[idx] += 1;
        }
    }

    /// Number of bins (excluding under/overflow).
    #[inline]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw count of bin `i`.
    #[inline]
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Total observations, including under/overflow.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of observations in bin `i`.
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// Fraction of observations strictly below `x` (approximated to bin
    /// resolution; used for statements like "network load remains under 5%
    /// of capacity for 92–99% of execution time").
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut c = self.underflow;
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        for (i, &n) in self.counts.iter().enumerate() {
            let bin_hi = self.lo + (i as f64 + 1.0) * w;
            if bin_hi <= x {
                c += n;
            } else {
                break;
            }
        }
        c as f64 / self.total as f64
    }

    /// The half-open range `[lo, hi)` of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + i as f64 * w, self.lo + (i as f64 + 1.0) * w)
    }

    /// Count of observations at or above the upper bound.
    #[inline]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Mean of the recorded observations approximated by bin centers.
    pub fn approx_mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let mut sum = 0.0;
        for (i, &n) in self.counts.iter().enumerate() {
            sum += n as f64 * (self.lo + (i as f64 + 0.5) * w);
        }
        sum += self.overflow as f64 * self.hi;
        sum += self.underflow as f64 * self.lo;
        sum / self.total as f64
    }
}
