//! # mdd-stats
//!
//! Measurement substrate: online scalar accumulators, histograms,
//! latency/throughput collection, Burton-Normal-Form performance curves
//! (the paper plots throughput on x and average latency on y for increasing
//! applied load, Section 4.3.1), deadlock-frequency normalization, and
//! plain-text table / CSV rendering used by the experiment harness.

#![warn(missing_docs)]

mod accum;
mod bnf;
mod histogram;
mod plot;
mod quantile;
mod table;

pub use accum::OnlineStats;
pub use bnf::{BnfCurve, BnfPoint};
pub use histogram::Histogram;
pub use plot::render_bnf;
pub use quantile::{LatencyQuantiles, P2Quantile};
pub use table::{render_csv, Table};

#[cfg(test)]
mod tests;
