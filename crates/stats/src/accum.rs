//! Online scalar statistics (Welford's algorithm).

/// Single-pass accumulator for count / mean / variance / min / max.
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel combine).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 =
            self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}
