//! Plain-text table and CSV rendering for the experiment harness.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; it is padded or truncated to the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns, a header rule, and trailing newline.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:>w$}", c, w = width[i]);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = width.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Render as CSV (RFC-4180-ish: fields containing commas or quotes are
    /// quoted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        csv_line(&mut out, &self.header);
        for row in &self.rows {
            csv_line(&mut out, row);
        }
        out
    }
}

fn csv_line(out: &mut String, cells: &[String]) {
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if c.contains(',') || c.contains('"') || c.contains('\n') {
            out.push('"');
            out.push_str(&c.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(c);
        }
    }
    out.push('\n');
}

/// Render rows of `f64` values as CSV with a header, formatting with
/// `precision` decimal places.
pub fn render_csv(header: &[&str], rows: &[Vec<f64>], precision: usize) -> String {
    let mut t = Table::new(header.to_vec());
    for r in rows {
        t.row(r.iter().map(|v| format!("{v:.precision$}")).collect());
    }
    t.to_csv()
}
