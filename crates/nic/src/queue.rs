//! Finite message queues with reservation accounting.
//!
//! Queues store [`MsgHandle`]s — the messages themselves stay in the
//! simulation's `MessageStore` until consumed.

use mdd_protocol::MsgHandle;
use std::collections::VecDeque;

/// A finite FIFO message queue with two kinds of reservations:
///
/// * *in-flight* reservations, made when a packet is accepted for ejection
///   (or when the memory controller commits to producing a subordinate),
///   converted to real occupancy when the message materializes;
/// * *earmarked* slots, preallocated for the terminating replies of
///   outstanding requests so replies are guaranteed to sink (the
///   avoidance-side technique of Section 2.1 / the Origin2000 reply
///   network).
#[derive(Clone, Debug)]
pub struct MsgQueue {
    q: VecDeque<MsgHandle>,
    cap: u32,
    inflight: u32,
    earmarked: u32,
}

impl MsgQueue {
    /// An empty queue of `cap` messages.
    pub fn new(cap: u32) -> Self {
        assert!(cap >= 1);
        MsgQueue {
            q: VecDeque::with_capacity(cap as usize),
            cap,
            inflight: 0,
            earmarked: 0,
        }
    }

    /// Messages currently enqueued.
    #[inline]
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True if no messages are enqueued (reservations may still exist).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Capacity in messages.
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.cap
    }

    /// Committed occupancy: enqueued + reserved + earmarked.
    #[inline]
    pub fn committed(&self) -> u32 {
        self.q.len() as u32 + self.inflight + self.earmarked
    }

    /// True if a *new* (non-earmarked) message could be admitted.
    #[inline]
    pub fn has_space(&self) -> bool {
        self.committed() < self.cap
    }

    /// True if the queue is completely committed — the detector's
    /// "fills up beyond a threshold" condition.
    #[inline]
    pub fn is_full(&self) -> bool {
        !self.has_space()
    }

    /// Reserve one slot for an incoming/forthcoming message. Returns false
    /// if no space.
    pub fn reserve(&mut self) -> bool {
        if self.has_space() {
            self.inflight += 1;
            true
        } else {
            false
        }
    }

    /// Release a reservation without materializing a message.
    pub fn unreserve(&mut self) {
        debug_assert!(self.inflight > 0);
        self.inflight -= 1;
    }

    /// Materialize a previously reserved message at the tail.
    pub fn push_reserved(&mut self, msg: MsgHandle) {
        debug_assert!(self.inflight > 0, "push_reserved without reservation");
        self.inflight -= 1;
        self.q.push_back(msg);
    }

    /// Admit a new message without prior reservation (used by request
    /// issue). Returns false (message given back via the Result) if full.
    pub fn push_new(&mut self, msg: MsgHandle) -> Result<(), MsgHandle> {
        if self.has_space() {
            self.q.push_back(msg);
            Ok(())
        } else {
            Err(msg)
        }
    }

    /// Earmark one slot for a future terminating reply. Returns false if
    /// no space remains.
    pub fn earmark(&mut self) -> bool {
        if self.has_space() {
            self.earmarked += 1;
            true
        } else {
            false
        }
    }

    /// Convert one earmarked slot into an in-flight reservation (the
    /// earmarked reply has arrived at the router and begins ejecting).
    /// Returns false if nothing was earmarked.
    pub fn claim_earmark(&mut self) -> bool {
        if self.earmarked > 0 {
            self.earmarked -= 1;
            self.inflight += 1;
            true
        } else {
            false
        }
    }

    /// Outstanding earmarked slots.
    #[inline]
    pub fn earmarked(&self) -> u32 {
        self.earmarked
    }

    /// Outstanding in-flight reservations.
    #[inline]
    pub fn inflight(&self) -> u32 {
        self.inflight
    }

    /// Handle of the head message.
    #[inline]
    pub fn front(&self) -> Option<&MsgHandle> {
        self.q.front()
    }

    /// Remove and return the head message handle.
    pub fn pop(&mut self) -> Option<MsgHandle> {
        self.q.pop_front()
    }

    /// Iterate over enqueued message handles front to back.
    pub fn iter(&self) -> impl Iterator<Item = &MsgHandle> {
        self.q.iter()
    }
}
