//! Per-NIC measurement counters.

use mdd_stats::{LatencyQuantiles, OnlineStats};

/// Counters and accumulators maintained by each NIC.
#[derive(Clone, Debug, Default)]
pub struct NicStats {
    /// End-to-end message latency (creation to consumption/sink), cycles.
    pub msg_latency: OnlineStats,
    /// Streaming latency quantiles (p50/p95/p99) for the same samples.
    pub msg_latency_quantiles: LatencyQuantiles,
    /// Latency of terminating replies only (transaction completions).
    pub txn_latency: OnlineStats,
    /// Messages consumed at this NIC (sunk or serviced).
    pub messages_consumed: u64,
    /// Flits this NIC injected into the network.
    pub flits_injected: u64,
    /// Flits delivered to this NIC.
    pub flits_delivered: u64,
    /// Transactions completed with this NIC as requester.
    pub transactions_completed: u64,
    /// Potential message-dependent deadlocks detected here.
    pub deadlocks_detected: u64,
    /// Deflective backoff replies generated here (DR).
    pub deflections: u64,
    /// Messages rescued over the recovery lane from here (PR).
    pub rescues: u64,
    /// Cycles the memory controller spent busy.
    pub mc_busy_cycles: u64,
}

impl NicStats {
    /// Merge another NIC's stats (for whole-network aggregation).
    pub fn merge(&mut self, other: &NicStats) {
        self.msg_latency.merge(&other.msg_latency);
        // Quantile sketches are not mergeable; whole-network quantiles are
        // re-estimated from one NIC's sketch being fed all samples when
        // needed. Merging keeps the larger sketch as an approximation.
        if other.msg_latency_quantiles.count() > self.msg_latency_quantiles.count() {
            self.msg_latency_quantiles = other.msg_latency_quantiles.clone();
        }
        self.txn_latency.merge(&other.txn_latency);
        self.messages_consumed += other.messages_consumed;
        self.flits_injected += other.flits_injected;
        self.flits_delivered += other.flits_delivered;
        self.transactions_completed += other.transactions_completed;
        self.deadlocks_detected += other.deadlocks_detected;
        self.deflections += other.deflections;
        self.rescues += other.rescues;
        self.mc_busy_cycles += other.mc_busy_cycles;
    }

    /// Aggregate a sequence of per-NIC stats in the given order.
    ///
    /// The Welford merge inside [`OnlineStats`] is exact but *not
    /// associative in floating point*: merging A into B then C gives a
    /// bit-different mean/M2 than merging (A,B) and (B,C) partials. Any
    /// whole-network aggregation that must be reproducible regardless of
    /// how NICs were partitioned (e.g. across execution shards) therefore
    /// goes through this single seam with the NICs in linear index order,
    /// never through pre-reduced per-partition partials.
    pub fn merge_all<'a>(parts: impl IntoIterator<Item = &'a NicStats>) -> NicStats {
        let mut agg = NicStats::default();
        for p in parts {
            agg.merge(p);
        }
        agg
    }
}
