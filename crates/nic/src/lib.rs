//! # mdd-nic
//!
//! The network-interface (endpoint) substrate: the part of the system where
//! message-dependent deadlock is born. Each NIC models (Figure 3):
//!
//! * finite input/output **message queues** (16 messages each by default,
//!   Table 2) in one of three organizations — shared, per logical network,
//!   or per message type ([`mdd_protocol::QueueOrg`]),
//! * a **memory controller** that services the non-terminating message at
//!   a queue head for `service_time` cycles (40 by default) and only
//!   begins when the output queue can hold the subordinate message(s) it
//!   will generate (the paper's explicit assumption in Section 3),
//! * an **MSHR table** bounding outstanding transactions and, for the
//!   avoidance-style configurations, *preallocating* input-queue space for
//!   terminating replies so they always sink,
//! * **packetization and injection** onto the router's local input virtual
//!   channels (one flit per cycle of link bandwidth), and reassembly on
//!   ejection,
//! * the **potential-deadlock detector** of Section 2.2: input and output
//!   queues full, head would generate a subordinate it cannot deposit,
//!   persisting beyond a time-out,
//! * the **deflective backoff** action used by DR (Origin2000-style), and
//! * the **deadlock message buffer (DMB)** plus rescue-processing hooks
//!   used by the Extended Disha Sequential progressive recovery.

#![warn(missing_docs)]

mod config;
mod nic;
mod queue;
mod stats;

pub use config::NicConfig;
pub use nic::{Mc, Nic, RescueOutcome, ServicePlan};
pub use queue::MsgQueue;
pub use stats::NicStats;

#[cfg(test)]
mod tests;
