//! Unit tests for the network-interface substrate.

use crate::*;
use mdd_protocol::{
    HopTarget, IdAlloc, Message, MessageId, MessageStore, MsgHandle, MsgType, PatternSpec,
    QueueOrg, ShapeId, TransactionId,
};
use mdd_topology::NicId;
use std::sync::Arc;

fn pat() -> Arc<PatternSpec> {
    Arc::new(PatternSpec::pat271())
}

fn cfg(org: QueueOrg) -> NicConfig {
    NicConfig {
        queue_capacity: 4,
        service_time: 10,
        mshr_limit: 2,
        detect_threshold: 5,
        queue_org: org,
        preallocate_replies: org != QueueOrg::Shared,
        preallocate_return_replies: false,
    }
}

/// A message of `mtype` at `chain_pos` within shape `shape` of PAT271.
fn msg(
    id: u64,
    mtype: u8,
    shape: u16,
    pos: u8,
    src: u32,
    dst: u32,
    requester: u32,
) -> Message {
    Message {
        id: MessageId(id),
        txn: TransactionId(id),
        mtype: MsgType(mtype),
        shape: ShapeId(shape),
        chain_pos: pos,
        src: NicId(src),
        dst: NicId(dst),
        requester: NicId(requester),
        home: NicId(dst),
        owner: NicId(2),
        length_flits: 4,
        created: 0,
        is_backoff: false,
        rescued: false,
        sharers: 0,
    }
}

/// An original request (RQ at chain position 0) from `src` to home `dst`,
/// following the chain-2 shape (RQ -> RP).
fn request(id: u64, src: u32, dst: u32) -> Message {
    msg(id, 0, 0, 0, src, dst, src)
}

/// Eject `m` into the NIC the way the network would: insert into the
/// store, check acceptance, then deliver the tail.
fn eject(nic: &mut Nic, store: &mut MessageStore, m: Message) -> MsgHandle {
    assert!(nic.can_accept(&m));
    let h = store.insert(m);
    nic.on_packet(h, store.get(h));
    h
}

/// Issue a fresh request through the store.
fn issue(nic: &mut Nic, store: &mut MessageStore, m: Message) -> MsgHandle {
    let h = store.insert(m);
    nic.issue_request(h, store);
    h
}

#[test]
fn issue_request_consumes_mshr_and_earmark() {
    let mut store = MessageStore::new();
    let mut nic = Nic::new(NicId(0), cfg(QueueOrg::PerType), pat(), 4);
    assert!(nic.can_issue_request(MsgType(0)));
    issue(&mut nic, &mut store, request(1, 0, 5));
    assert_eq!(nic.outstanding(), 1);
    // PerType org: terminating RP lands in queue index sa_partition(RP)=3.
    assert_eq!(nic.in_queue(3).earmarked(), 1);
    issue(&mut nic, &mut store, request(2, 0, 5));
    assert!(!nic.can_issue_request(MsgType(0)), "MSHR limit of 2 reached");
}

#[test]
fn queue_org_counts() {
    let p = pat();
    assert_eq!(Nic::new(NicId(0), cfg(QueueOrg::Shared), p.clone(), 4).num_queues(), 1);
    assert_eq!(
        Nic::new(NicId(0), cfg(QueueOrg::PerNetwork), p.clone(), 4).num_queues(),
        2
    );
    assert_eq!(Nic::new(NicId(0), cfg(QueueOrg::PerType), p, 4).num_queues(), 4);
}

#[test]
fn mc_services_head_and_generates_subordinate() {
    let mut store = MessageStore::new();
    let mut nic = Nic::new(NicId(5), cfg(QueueOrg::Shared), pat(), 4);
    let mut ids = IdAlloc::new();
    ids.next_msg(); // keep ids distinct from the test message's id 0
    // An RQ (chain-2 shape) arrives at home node 5 from requester 0.
    eject(&mut nic, &mut store, request(0, 0, 5));
    assert_eq!(nic.in_queue(0).len(), 1);
    // Service takes 10 cycles; subordinate RP appears afterwards.
    for c in 0..12 {
        nic.tick(c, &mut ids, &mut store);
    }
    assert_eq!(nic.in_queue(0).len(), 0);
    assert_eq!(nic.out_queue(0).len(), 1);
    let sub = store.get(*nic.out_queue(0).front().unwrap());
    assert_eq!(sub.mtype, MsgType(3), "chain-2 subordinate is RP");
    assert_eq!(sub.dst, NicId(0), "reply goes to the requester");
    assert_eq!(sub.chain_pos, 1);
    assert_eq!(nic.stats.messages_consumed, 1);
}

#[test]
fn terminating_reply_sinks_instantly_and_frees_mshr() {
    let mut store = MessageStore::new();
    let mut nic = Nic::new(NicId(0), cfg(QueueOrg::PerType), pat(), 4);
    let mut ids = IdAlloc::new();
    issue(&mut nic, &mut store, request(1, 0, 5));
    assert_eq!(nic.outstanding(), 1);
    // The terminating RP comes back.
    let rp = msg(2, 3, 0, 1, 5, 0, 0);
    assert!(nic.can_accept(&rp), "earmarked slot guarantees acceptance");
    assert_eq!(nic.in_queue(3).earmarked(), 0, "earmark claimed");
    let h = store.insert(rp);
    nic.on_packet(h, store.get(h));
    nic.tick(100, &mut ids, &mut store);
    assert_eq!(nic.outstanding(), 0, "transaction complete");
    assert_eq!(nic.in_queue(3).len(), 0, "reply drained");
    assert_eq!(nic.stats.transactions_completed, 1);
    assert!((nic.stats.msg_latency.mean() - 100.0).abs() < 1e-9);
}

#[test]
fn mc_blocked_when_output_full() {
    let mut store = MessageStore::new();
    let mut nic = Nic::new(NicId(5), cfg(QueueOrg::Shared), pat(), 4);
    let mut ids = IdAlloc::new();
    // Fill the (shared) output queue with 4 unrelated requests.
    for i in 0..4 {
        let h = store.insert(request(100 + i, 5, 1));
        assert!(nic.try_deposit_output(h, &store).is_ok());
    }
    eject(&mut nic, &mut store, request(0, 0, 5));
    for c in 0..50 {
        nic.tick(c, &mut ids, &mut store);
    }
    assert_eq!(
        nic.in_queue(0).len(),
        1,
        "head cannot be serviced: no output space for its subordinate"
    );
}

#[test]
fn detector_fires_after_threshold() {
    let mut store = MessageStore::new();
    let mut nic = Nic::new(NicId(5), cfg(QueueOrg::Shared), pat(), 4);
    let mut ids = IdAlloc::new();
    // Fill output queue (4 slots) and input queue (4 requests).
    for i in 0..4 {
        let h = store.insert(request(100 + i, 5, 1));
        nic.try_deposit_output(h, &store).unwrap();
    }
    for i in 0..4 {
        eject(&mut nic, &mut store, request(i, 0, 5));
    }
    nic.tick(0, &mut ids, &mut store);
    assert!(!nic.detection_fired(0), "time-out not yet elapsed");
    for c in 1..=6 {
        nic.tick(c, &mut ids, &mut store);
    }
    assert!(nic.detection_fired(6), "condition persisted past T=5");
    assert_eq!(nic.stats.deadlocks_detected, 1, "one episode counted once");
}

#[test]
fn deflection_generates_backoff_reply() {
    // Home node 5 under DR with a stuck FRQ-generating head (chain-3 shape).
    let mut store = MessageStore::new();
    let mut nic = Nic::new(NicId(5), cfg(QueueOrg::PerNetwork), pat(), 4);
    let mut ids = IdAlloc::new();
    // Fill the request output queue (network 0) so FRQ cannot be deposited.
    for i in 0..4 {
        let h = store.insert(request(100 + i, 5, 1));
        nic.try_deposit_output(h, &store).unwrap();
    }
    // Fill the request input queue with chain-3 RQs (subordinate FRQ).
    for i in 0..4 {
        eject(&mut nic, &mut store, msg(i, 0, 1, 0, 0, 5, 0)); // shape 1 = chain-3
    }
    for c in 0..6 {
        nic.tick(c, &mut ids, &mut store);
    }
    assert!(nic.detection_fired(5));
    assert!(nic.try_deflect(6, &mut ids, &mut store));
    assert_eq!(nic.stats.deflections, 1);
    assert_eq!(nic.in_queue(0).len(), 3, "stuck head removed");
    // The backoff reply sits in the reply output queue (network 1).
    assert_eq!(nic.out_queue(1).len(), 1);
    let bkf = store.get(*nic.out_queue(1).front().unwrap());
    assert!(bkf.is_backoff);
    assert_eq!(bkf.dst, NicId(0), "backoff goes to the requester");
    assert_eq!(bkf.mtype, pat().protocol().backoff_type().unwrap());
}

#[test]
fn backoff_reply_resumes_chain_at_requester() {
    let mut store = MessageStore::new();
    let mut nic = Nic::new(NicId(0), cfg(QueueOrg::PerNetwork), pat(), 4);
    let mut ids = IdAlloc::new();
    // Requester receives a backoff reply for a chain-3 transaction whose
    // deflected message was FRQ (chain position 1).
    let mut bkf = msg(7, 4, 1, 0, 5, 0, 0); // BKF = type 4
    bkf.is_backoff = true;
    eject(&mut nic, &mut store, bkf);
    nic.tick(0, &mut ids, &mut store);
    // The requester now issues the FRQ itself, to the owner.
    let frq_q = QueueOrg::PerNetwork.queue_index(pat().protocol(), MsgType(1));
    assert_eq!(nic.out_queue(frq_q).len(), 1);
    let frq = store.get(*nic.out_queue(frq_q).front().unwrap());
    assert_eq!(frq.mtype, MsgType(1));
    assert_eq!(frq.dst, NicId(2), "forwarded request goes to the owner");
    assert_eq!(frq.src, NicId(0), "sent by the requester, not the home");
}

#[test]
fn rescue_from_input_produces_subordinate_for_dmb() {
    let mut store = MessageStore::new();
    let mut nic = Nic::new(NicId(5), cfg(QueueOrg::Shared), pat(), 4);
    let mut ids = IdAlloc::new();
    for i in 0..4 {
        let h = store.insert(request(100 + i, 5, 1));
        nic.try_deposit_output(h, &store).unwrap();
    }
    for i in 0..4 {
        eject(&mut nic, &mut store, request(i, 0, 5));
    }
    for c in 0..6 {
        nic.tick(c, &mut ids, &mut store);
    }
    assert!(nic.detection_fired(5));
    assert!(nic.begin_rescue_from_input(6, &store).is_some());
    assert!(nic.rescue_busy());
    assert_eq!(nic.in_queue(0).len(), 3, "head removed for rescue");
    // MC processes the rescued head; subordinate emerges for the DMB.
    let mut out = None;
    for c in 6..30 {
        nic.tick(c, &mut ids, &mut store);
        if let Some(subs) = nic.take_rescue_output() {
            out = Some((c, subs));
            break;
        }
    }
    let (c, subs) = out.expect("rescue processing must complete");
    assert!(c >= 16, "service time of 10 cycles applies");
    assert_eq!(subs.len(), 1);
    assert_eq!(store.get(subs[0]).mtype, MsgType(3), "RQ's subordinate is RP");
    assert!(!nic.rescue_busy());
    assert_eq!(nic.stats.rescues, 1);
}

#[test]
fn rescue_process_waits_for_current_mc_operation() {
    let mut store = MessageStore::new();
    let mut nic = Nic::new(NicId(5), cfg(QueueOrg::Shared), pat(), 4);
    let mut ids = IdAlloc::new();
    // Normal work first.
    eject(&mut nic, &mut store, request(0, 0, 5));
    nic.tick(0, &mut ids, &mut store); // MC starts servicing at cycle 0
    // A lane-delivered message needing preemption.
    let lane = store.insert(msg(50, 0, 1, 0, 1, 5, 1));
    assert_eq!(nic.rescue_process(lane), RescueOutcome::Scheduled);
    // Completion of the normal op happens at cycle 10; rescue runs after.
    let mut done_at = None;
    for c in 1..40 {
        nic.tick(c, &mut ids, &mut store);
        if let Some(_subs) = nic.take_rescue_output() {
            done_at = Some(c);
            break;
        }
    }
    let c = done_at.expect("rescue completes");
    assert!(c >= 20, "current op (10) then rescue op (10): got {c}");
    // The normal subordinate was also produced.
    assert_eq!(nic.out_queue(0).len(), 1);
}

#[test]
fn deposit_paths() {
    let mut store = MessageStore::new();
    let mut nic = Nic::new(NicId(0), cfg(QueueOrg::Shared), pat(), 4);
    // Input deposit succeeds until the queue is full.
    for i in 0..4 {
        let h = store.insert(request(i, 1, 0));
        assert!(nic.try_deposit_input(h, &store).is_ok());
    }
    let h = store.insert(request(9, 1, 0));
    assert!(nic.try_deposit_input(h, &store).is_err());
    // Output deposit likewise.
    for i in 0..4 {
        let h = store.insert(request(10 + i, 0, 1));
        assert!(nic.try_deposit_output(h, &store).is_ok());
    }
    let h = store.insert(request(19, 0, 1));
    assert!(nic.try_deposit_output(h, &store).is_err());
}

#[test]
fn sink_terminating_via_preemption() {
    let mut store = MessageStore::new();
    let mut nic = Nic::new(NicId(0), cfg(QueueOrg::Shared), pat(), 4);
    issue(&mut nic, &mut store, request(1, 0, 5));
    let rp = store.insert(msg(2, 3, 0, 1, 5, 0, 0));
    nic.sink_terminating(rp, 44, &mut store);
    assert_eq!(nic.outstanding(), 0);
    assert_eq!(nic.stats.transactions_completed, 1);
}

#[test]
fn injection_streams_one_flit_per_cycle() {
    use mdd_router::{AcceptAll, Network, PacketState, RouteCandidate, Routing};
    use mdd_topology::{MinimalHops, NodeId, Topology, TopologyKind};

    struct Dor;
    impl Routing for Dor {
        fn candidates(
            &self,
            topo: &Topology,
            node: NodeId,
            pkt: &PacketState,
            _hint: u64,
            out: &mut Vec<RouteCandidate>,
        ) {
            if node == pkt.dst_router {
                out.push(RouteCandidate {
                    port: topo.local_port(topo.nic_local_index(pkt.dst)),
                    vc: 0,
                });
                return;
            }
            let mh = MinimalHops::new(topo, node, pkt.dst_router);
            let d = mh.first_unaligned().unwrap();
            let dir = mh.dim(d).dor_direction().unwrap();
            out.push(RouteCandidate {
                port: topo.port(d, dir),
                vc: (pkt.crossed_dateline >> d) & 1,
            });
        }
        fn injection_vcs(&self, _pkt: &PacketState, out: &mut Vec<u8>) {
            out.push(0);
        }
    }

    let mut store = MessageStore::new();
    let topo = Topology::new(TopologyKind::Torus, &[4, 4], 1);
    let mut net = Network::new(topo, 2, 2);
    let mut nic = Nic::new(NicId(0), cfg(QueueOrg::Shared), pat(), 2);
    let mut ej = AcceptAll::default();
    // Two requests queued for injection.
    issue(&mut nic, &mut store, request(1, 0, 5));
    // Second transaction is allowed (mshr_limit = 2).
    assert!(nic.can_issue_request(MsgType(0)));
    issue(&mut nic, &mut store, request(2, 0, 6));
    for c in 0..120 {
        nic.injection_tick(&mut net, &Dor, c, &store);
        net.step(c, &Dor, &mut ej);
    }
    assert_eq!(ej.delivered.len(), 2, "both requests traverse the network");
    assert_eq!(nic.stats.flits_injected, 8, "two 4-flit packets");
    assert_eq!(nic.buffered_messages(), 0);
}

#[test]
fn abort_injection_removes_active_head() {
    use mdd_router::{Network, PacketState, RouteCandidate, Routing};
    use mdd_topology::{NodeId, Topology, TopologyKind};
    struct Stub;
    impl Routing for Stub {
        fn candidates(
            &self,
            _t: &Topology,
            _n: NodeId,
            _p: &PacketState,
            _h: u64,
            out: &mut Vec<RouteCandidate>,
        ) {
            out.push(RouteCandidate {
                port: mdd_topology::PortId(0),
                vc: 0,
            });
        }
        fn injection_vcs(&self, _p: &PacketState, out: &mut Vec<u8>) {
            out.push(0);
        }
    }
    let mut store = MessageStore::new();
    let topo = Topology::new(TopologyKind::Torus, &[4, 4], 1);
    let mut net = Network::new(topo, 2, 2);
    let mut nic = Nic::new(NicId(0), cfg(QueueOrg::Shared), pat(), 2);
    let h = issue(&mut nic, &mut store, request(1, 0, 5));
    nic.injection_tick(&mut net, &Stub, 0, &store); // starts injection, sends one flit
    assert!(nic.abort_injection(h));
    assert_eq!(nic.out_queue(0).len(), 0, "aborted message left the queue");
    assert!(!nic.abort_injection(h), "already aborted");
}

// ---------------------------------------------------------------------
// Multicast / join semantics (Appendix Case 4 machinery).
// ---------------------------------------------------------------------

/// A pattern with one multicast shape: RQ -> INV (x sharers) -> ACK
/// (joined at home) -> RP.
fn multicast_pat() -> Arc<PatternSpec> {
    use mdd_protocol::{ProtocolSpec, TransactionShape};
    let p = ProtocolSpec::s1_generic();
    let (rq, inv, ack, rp) = (MsgType(0), MsgType(1), MsgType(2), MsgType(3));
    Arc::new(PatternSpec::new(
        "MCAST",
        p,
        vec![(
            1.0,
            TransactionShape::new(
                vec![rq, inv, ack, rp],
                vec![
                    HopTarget::Home,
                    HopTarget::Owner,
                    HopTarget::Home,
                    HopTarget::Requester,
                ],
            )
            .with_multicast(1),
        )],
    ))
}

/// A write request carrying a 3-sharer invalidation set.
fn mcast_request(id: u64, src: u32, home: u32, sharers: u64) -> Message {
    let mut m = msg(id, 0, 0, 0, src, home, src);
    m.sharers = sharers;
    m
}

#[test]
fn multicast_generates_one_inv_per_sharer() {
    let mut store = MessageStore::new();
    let mut nic = Nic::new(NicId(5), cfg(QueueOrg::Shared), multicast_pat(), 4);
    let mut ids = IdAlloc::new();
    ids.next_msg();
    eject(&mut nic, &mut store, mcast_request(0, 0, 5, 0b1110)); // sharers 1, 2, 3
    for c in 0..12 {
        nic.tick(c, &mut ids, &mut store);
    }
    assert_eq!(nic.out_queue(0).len(), 3, "one INV per sharer");
    let dsts: Vec<u32> = nic.out_queue(0).iter().map(|h| store.get(*h).dst.0).collect();
    assert_eq!(dsts, vec![1, 2, 3]);
    for h in nic.out_queue(0).iter() {
        let s = store.get(*h);
        assert_eq!(s.mtype, MsgType(1));
        assert_eq!(s.chain_pos, 1);
        assert_eq!(s.sharers, 0b1110, "branch count travels with the chain");
    }
}

#[test]
fn multicast_blocked_without_room_for_all_branches() {
    // Queue capacity 4; 3 slots already used: only 1 left but fanout 3.
    let mut store = MessageStore::new();
    let mut nic = Nic::new(NicId(5), cfg(QueueOrg::Shared), multicast_pat(), 4);
    let mut ids = IdAlloc::new();
    for i in 0..3 {
        let h = store.insert(mcast_request(100 + i, 5, 1, 0));
        nic.try_deposit_output(h, &store).unwrap();
    }
    eject(&mut nic, &mut store, mcast_request(0, 0, 5, 0b1110));
    for c in 0..30 {
        nic.tick(c, &mut ids, &mut store);
    }
    assert_eq!(
        nic.in_queue(0).len(),
        1,
        "partial reservations must be rolled back, head stays queued"
    );
    assert_eq!(nic.out_queue(0).len(), 3, "no partial fan-out");
}

#[test]
fn join_waits_for_all_branch_replies() {
    let mut store = MessageStore::new();
    let mut nic = Nic::new(NicId(5), cfg(QueueOrg::Shared), multicast_pat(), 4);
    let mut ids = IdAlloc::new();
    ids.next_msg();
    // Three ACKs (chain position 2) arrive at the home for one txn.
    let mut cycle = 0u64;
    for (k, src) in [1u32, 2, 3].iter().enumerate() {
        let mut ack = msg(10 + k as u64, 2, 0, 2, *src, 5, 0);
        ack.txn = TransactionId(77); // all branches belong to one transaction
        ack.sharers = 0b1110;
        eject(&mut nic, &mut store, ack);
        // Service this ack fully before delivering the next.
        for _ in 0..15 {
            nic.tick(cycle, &mut ids, &mut store);
            cycle += 1;
        }
        let rp_count = nic.out_queue(0).len();
        if k < 2 {
            assert_eq!(rp_count, 0, "no reply until the last ack (got one after ack {k})");
        } else {
            assert_eq!(rp_count, 1, "final ack releases the terminating reply");
            let rp = store.get(*nic.out_queue(0).front().unwrap());
            assert_eq!(rp.mtype, MsgType(3));
            assert_eq!(rp.dst, NicId(0));
        }
    }
}

#[test]
fn rescue_of_multicast_head_yields_all_branches() {
    let mut store = MessageStore::new();
    let mut nic = Nic::new(NicId(5), cfg(QueueOrg::Shared), multicast_pat(), 4);
    let mut ids = IdAlloc::new();
    ids.next_msg();
    // Wedge: output full, input full of multicast-generating heads.
    for i in 0..4 {
        let h = store.insert(mcast_request(100 + i, 5, 1, 0));
        nic.try_deposit_output(h, &store).unwrap();
    }
    for i in 0..4 {
        eject(&mut nic, &mut store, mcast_request(i, 0, 5, 0b0110));
    }
    for c in 0..6 {
        nic.tick(c, &mut ids, &mut store);
    }
    assert!(nic.detection_fired(5));
    assert!(nic.begin_rescue_from_input(6, &store).is_some());
    let mut subs = None;
    for c in 6..40 {
        nic.tick(c, &mut ids, &mut store);
        if let Some(v) = nic.take_rescue_output() {
            subs = Some(v);
            break;
        }
    }
    let subs = subs.expect("rescue completes");
    assert_eq!(subs.len(), 2, "Appendix Case 4: all branch subordinates rescued");
    let dsts: Vec<u32> = subs.iter().map(|h| store.get(*h).dst.0).collect();
    assert_eq!(dsts, vec![1, 2]);
}

// ---------------------------------------------------------------------
// Queue accounting properties.
// ---------------------------------------------------------------------

mod queue_properties {
    use super::*;
    use proptest::prelude::*;

    /// Random interleavings of reservations, earmarks and pushes never
    /// violate the capacity invariant, and the queue accepts exactly while
    /// committed occupancy is below capacity.
    #[derive(Clone, Copy, Debug)]
    enum Op {
        Reserve,
        Unreserve,
        PushReserved,
        PushNew,
        Earmark,
        ClaimEarmark,
        Pop,
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            Just(Op::Reserve),
            Just(Op::Unreserve),
            Just(Op::PushReserved),
            Just(Op::PushNew),
            Just(Op::Earmark),
            Just(Op::ClaimEarmark),
            Just(Op::Pop),
        ]
    }

    proptest! {
        #[test]
        fn capacity_invariant_holds(cap in 1u32..12,
                                    ops in proptest::collection::vec(arb_op(), 0..200)) {
            let mut store = MessageStore::new();
            let mut q = MsgQueue::new(cap);
            let mut next_id = 0u64;
            for op in ops {
                match op {
                    Op::Reserve => {
                        let had_space = q.has_space();
                        prop_assert_eq!(q.reserve(), had_space,
                            "reserve must succeed iff space existed");
                    }
                    Op::Unreserve => {
                        if q.inflight() > 0 {
                            q.unreserve();
                        }
                    }
                    Op::PushReserved => {
                        if q.inflight() > 0 {
                            next_id += 1;
                            let h = store.insert(super::request(next_id, 0, 1));
                            q.push_reserved(h);
                        }
                    }
                    Op::PushNew => {
                        next_id += 1;
                        let had_space = q.has_space();
                        let h = store.insert(super::request(next_id, 0, 1));
                        let r = q.push_new(h);
                        prop_assert_eq!(r.is_ok(), had_space);
                    }
                    Op::Earmark => {
                        let had_space = q.has_space();
                        prop_assert_eq!(q.earmark(), had_space);
                    }
                    Op::ClaimEarmark => {
                        let had = q.earmarked() > 0;
                        prop_assert_eq!(q.claim_earmark(), had);
                    }
                    Op::Pop => {
                        let _ = q.pop();
                    }
                }
                prop_assert!(q.committed() <= cap, "capacity invariant violated");
                prop_assert_eq!(q.is_full(), !q.has_space());
                prop_assert!(q.len() as u32 + q.inflight() + q.earmarked() == q.committed());
            }
        }
    }
}
