//! NIC configuration.

use mdd_protocol::QueueOrg;

/// Per-NIC configuration (the endpoint half of Table 2 plus the detection
/// parameters of Section 4.1).
#[derive(Clone, Copy, Debug)]
pub struct NicConfig {
    /// Capacity of each message queue, in messages (Table 2: 16).
    pub queue_capacity: u32,
    /// Memory-controller service time per non-terminating message, in
    /// cycles (Table 2: 40).
    pub service_time: u64,
    /// Maximum outstanding transactions this node may have as a requester
    /// (MSHRs in the lockup-free cache).
    pub mshr_limit: u32,
    /// Detection time-out `T` in cycles (Section 4.1: 25): the
    /// full-queues/no-progress condition must persist this long before a
    /// potential message-dependent deadlock is declared.
    pub detect_threshold: u64,
    /// Message-queue organization.
    pub queue_org: QueueOrg,
    /// Preallocate an input-queue slot for the terminating reply of every
    /// outstanding request, guaranteeing replies always sink (used by SA,
    /// DR and the per-type "QA" configurations; off for PR's shared
    /// queues, where reply coupling is part of the modelled behaviour).
    pub preallocate_replies: bool,
    /// Additionally preallocate input-queue slots for *non-terminating*
    /// replies expected back mid-chain (the FRP a home receives after
    /// forwarding), keeping the shared reply network deadlock-free under
    /// deflective recovery — the Origin2000's second avoidance technique.
    pub preallocate_return_replies: bool,
}

impl NicConfig {
    /// The paper's defaults (Table 2 / Section 4.1) with a given queue
    /// organization; reply preallocation follows the organization (shared
    /// queues cannot meaningfully preallocate).
    pub fn paper_default(queue_org: QueueOrg) -> Self {
        NicConfig {
            queue_capacity: 16,
            service_time: 40,
            mshr_limit: 16,
            detect_threshold: 25,
            queue_org,
            preallocate_replies: queue_org != QueueOrg::Shared,
            preallocate_return_replies: false,
        }
    }
}
