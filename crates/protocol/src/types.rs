//! Message type identifiers and per-type static attributes.

use std::fmt;

/// Index of a message type within a [`crate::ProtocolSpec`] (0-based; the
/// paper's `m1` is `MsgType(0)`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MsgType(pub u8);

impl MsgType {
    /// Raw index for vector access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MsgType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0 + 1)
    }
}

/// Coarse classification of a message type, used by the deflective-recovery
/// scheme's two-logical-network split (request network vs reply network)
/// and to pick the paper's 4-flit vs 20-flit message length (Table 2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MsgKind {
    /// Command-carrying messages (original requests, forwarded requests,
    /// invalidations): short, 4 flits by default.
    Request,
    /// Data- or acknowledgement-carrying messages: long, 20 flits by
    /// default (cache-line payload); short control replies such as the
    /// Origin2000 backoff reply override the length.
    Reply,
}

/// Static attributes of one message type within a protocol.
#[derive(Clone, Debug)]
pub struct MsgTypeSpec {
    /// Human-readable mnemonic (e.g. `"ORQ"`, `"FRQ"`, `"TRP"`).
    pub name: &'static str,
    /// Request/reply classification.
    pub kind: MsgKind,
    /// True if messages of this type always sink on arrival (no subordinate
    /// is ever generated from them). Every dependency chain ends in a
    /// terminating type.
    pub terminating: bool,
    /// Message length in flits.
    pub length_flits: u32,
}

impl MsgTypeSpec {
    /// A short (4-flit) request type.
    pub fn request(name: &'static str) -> Self {
        MsgTypeSpec {
            name,
            kind: MsgKind::Request,
            terminating: false,
            length_flits: 4,
        }
    }

    /// A long (20-flit) data reply type.
    pub fn reply(name: &'static str) -> Self {
        MsgTypeSpec {
            name,
            kind: MsgKind::Reply,
            terminating: false,
            length_flits: 20,
        }
    }

    /// Mark the type terminating (builder style).
    pub fn terminating(mut self) -> Self {
        self.terminating = true;
        self
    }

    /// Override the flit length (builder style).
    pub fn with_length(mut self, flits: u32) -> Self {
        self.length_flits = flits;
        self
    }
}
