//! Unit and property tests for protocol descriptions and patterns.

use crate::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn two_type_protocol_structure() {
    let p = ProtocolSpec::two_type();
    assert_eq!(p.num_types(), 2);
    assert_eq!(p.chain_length(), 2);
    assert!(p.may_generate(MsgType(0), MsgType(1)));
    assert!(p.is_terminating(MsgType(1)));
    assert!(!p.is_terminating(MsgType(0)));
    assert_eq!(p.kind(MsgType(0)), MsgKind::Request);
    assert_eq!(p.kind(MsgType(1)), MsgKind::Reply);
    assert_eq!(p.length(MsgType(0)), 4);
    assert_eq!(p.length(MsgType(1)), 20);
    assert_eq!(p.backoff_type(), None);
    assert_eq!(p.terminating_type(), MsgType(1));
}

#[test]
fn s1_generic_chain_length_is_four() {
    let p = ProtocolSpec::s1_generic();
    assert_eq!(p.chain_length(), 4, "RQ ≺ FRQ ≺ FRP ≺ RP");
    assert_eq!(p.num_types(), 5, "four chain types plus the backoff type");
    assert_eq!(p.num_partition_types(), 4, "backoff shares the reply partition");
    // Closure: everything is subordinate to RQ.
    assert_eq!(
        p.subordinate_closure(MsgType(0)),
        vec![MsgType(1), MsgType(2), MsgType(3)]
    );
    assert_eq!(p.subordinate_closure(MsgType(3)), vec![]);
}

#[test]
fn origin2000_matches_figure_2() {
    let p = ProtocolSpec::origin2000();
    // Absent deadlock, the maximum chain is ORQ ≺ FRQ ≺ TRP: length 3.
    assert_eq!(p.chain_length(), 3);
    assert_eq!(p.backoff_type(), Some(MsgType(1)));
    // With the backoff chain, ORQ ≺ BRP ≺ FRQ ≺ TRP is permitted.
    assert!(p.may_generate(MsgType(1), MsgType(2)));
    // Partitions: ORQ, FRQ, TRP get their own; BRP shares TRP's.
    assert_eq!(p.sa_partition(MsgType(0)), 0);
    assert_eq!(p.sa_partition(MsgType(2)), 1);
    assert_eq!(p.sa_partition(MsgType(3)), 2);
    assert_eq!(p.sa_partition(MsgType(1)), p.sa_partition(MsgType(3)));
    assert_eq!(p.num_partition_types(), 3);
}

#[test]
fn dr_network_split_by_kind() {
    let p = ProtocolSpec::s1_generic();
    assert_eq!(p.dr_network(MsgType(0)), 0, "RQ rides the request network");
    assert_eq!(p.dr_network(MsgType(1)), 0, "FRQ rides the request network");
    assert_eq!(p.dr_network(MsgType(2)), 1, "FRP rides the reply network");
    assert_eq!(p.dr_network(MsgType(3)), 1, "RP rides the reply network");
    assert_eq!(p.dr_network(MsgType(4)), 1, "BKF rides the reply network");
}

#[test]
fn sa_partition_is_dense_and_injective_for_chain_types() {
    for p in [
        ProtocolSpec::two_type(),
        ProtocolSpec::s1_generic(),
        ProtocolSpec::origin2000(),
    ] {
        let mut seen = vec![false; p.num_partition_types()];
        for t in p.msg_types() {
            if Some(t) == p.backoff_type() {
                continue;
            }
            let part = p.sa_partition(t);
            assert!(part < p.num_partition_types());
            assert!(!seen[part], "two chain types mapped to one partition");
            seen[part] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

#[test]
fn validation_rejects_cycles() {
    let r = std::panic::catch_unwind(|| {
        ProtocolSpec::new(
            "bad",
            vec![
                MsgTypeSpec::request("A"),
                MsgTypeSpec::request("B"),
                MsgTypeSpec::reply("T").terminating(),
            ],
            &[(0, 1), (1, 0), (1, 2)],
            None,
        )
    });
    assert!(r.is_err(), "cyclic dependency must be rejected");
}

#[test]
fn validation_rejects_dead_end_chains() {
    let r = std::panic::catch_unwind(|| {
        ProtocolSpec::new(
            "bad",
            vec![
                MsgTypeSpec::request("A"),
                MsgTypeSpec::request("B"), // non-terminating, no subordinates
                MsgTypeSpec::reply("T").terminating(),
            ],
            &[(0, 2)],
            None,
        )
    });
    assert!(r.is_err(), "non-terminating dead ends must be rejected");
}

#[test]
fn validation_rejects_multiple_terminators() {
    let r = std::panic::catch_unwind(|| {
        ProtocolSpec::new(
            "bad",
            vec![
                MsgTypeSpec::request("A"),
                MsgTypeSpec::reply("T1").terminating(),
                MsgTypeSpec::reply("T2").terminating(),
            ],
            &[(0, 1), (0, 2)],
            None,
        )
    });
    assert!(r.is_err());
}

/// Table 3 check: the implied message-type distributions. The paper's
/// PAT721 row prints 47.7% for m1/m4 where the chain-length mix implies
/// 41.7% (see DESIGN.md §6); every other row matches to rounding.
#[test]
fn table3_type_distributions() {
    let tol = 0.002;
    let check = |pat: PatternSpec, want: &[(usize, f64)]| {
        let dist = pat.type_distribution();
        for &(ty, frac) in want {
            assert!(
                (dist[ty] - frac).abs() < tol,
                "{}: type m{} expected {:.3}, got {:.3}",
                pat.name(),
                ty + 1,
                frac,
                dist[ty]
            );
        }
    };
    check(PatternSpec::pat100(), &[(0, 0.5), (1, 0.5)]);
    check(
        PatternSpec::pat721(),
        &[(0, 0.417), (1, 0.125), (2, 0.042), (3, 0.417)],
    );
    check(
        PatternSpec::pat451(),
        &[(0, 0.371), (1, 0.222), (2, 0.037), (3, 0.371)],
    );
    check(
        PatternSpec::pat271(),
        &[(0, 0.345), (1, 0.276), (2, 0.034), (3, 0.345)],
    );
    // PAT280 uses the Origin protocol: m1=ORQ, m2=BRP (0%), m3=FRQ, m4=TRP.
    check(
        PatternSpec::pat280(),
        &[(0, 0.357), (1, 0.0), (2, 0.286), (3, 0.357)],
    );
}

#[test]
fn avg_chain_lengths_match_mixes() {
    assert!((PatternSpec::pat100().avg_chain_length() - 2.0).abs() < 1e-9);
    assert!((PatternSpec::pat721().avg_chain_length() - 2.4).abs() < 1e-9);
    assert!((PatternSpec::pat451().avg_chain_length() - 2.7).abs() < 1e-9);
    assert!((PatternSpec::pat271().avg_chain_length() - 2.9).abs() < 1e-9);
    assert!((PatternSpec::pat280().avg_chain_length() - 2.8).abs() < 1e-9);
}

#[test]
fn sampling_matches_weights() {
    let pat = PatternSpec::pat451();
    let mut rng = StdRng::seed_from_u64(7);
    let n = 200_000;
    let mut counts = vec![0u32; pat.num_shapes()];
    for _ in 0..n {
        counts[pat.sample_shape(&mut rng).index()] += 1;
    }
    let fracs: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
    assert!((fracs[0] - 0.4).abs() < 0.01);
    assert!((fracs[1] - 0.5).abs() < 0.01);
    assert!((fracs[2] - 0.1).abs() < 0.01);
}

#[test]
fn flit_accounting() {
    // PAT100: 4-flit request + 20-flit reply per transaction.
    assert!((PatternSpec::pat100().flits_per_txn() - 24.0).abs() < 1e-9);
    // PAT721 chain-2: 4+20, chain-3: 4+4+20, chain-4: 4+4+20+20.
    let want = 0.7 * 24.0 + 0.2 * 28.0 + 0.1 * 48.0;
    assert!((PatternSpec::pat721().flits_per_txn() - want).abs() < 1e-9);
}

#[test]
fn message_target_resolution() {
    use mdd_topology::NicId;
    let msg = Message {
        id: MessageId(1),
        txn: TransactionId(1),
        mtype: MsgType(0),
        shape: ShapeId(0),
        chain_pos: 0,
        src: NicId(3),
        dst: NicId(5),
        requester: NicId(3),
        home: NicId(5),
        owner: NicId(9),
        length_flits: 4,
        created: 0,
        is_backoff: false,
        rescued: false,
        sharers: 0,
    };
    assert_eq!(msg.resolve_target(HopTarget::Home), NicId(5));
    assert_eq!(msg.resolve_target(HopTarget::Owner), NicId(9));
    assert_eq!(msg.resolve_target(HopTarget::Requester), NicId(3));
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any generic chain-length mix yields a valid distribution whose
        /// type frequencies follow the Table 3 arithmetic.
        #[test]
        fn generic_mix_arithmetic(p2 in 0.01f64..1.0, p3 in 0.01f64..1.0, p4 in 0.01f64..1.0) {
            let total = p2 + p3 + p4;
            let (p2, p3, p4) = (p2 / total, p3 / total, p4 / total);
            let pat = PatternSpec::generic_mix("prop", p2, p3, p4);
            let dist = pat.type_distribution();
            let msgs = 2.0 * p2 + 3.0 * p3 + 4.0 * p4;
            prop_assert!((dist[0] - 1.0 / msgs).abs() < 1e-9);        // m1 once per txn
            prop_assert!((dist[1] - (p3 + p4) / msgs).abs() < 1e-9);  // FRQ in chains 3,4
            prop_assert!((dist[2] - p4 / msgs).abs() < 1e-9);         // FRP in chain 4
            prop_assert!((dist[3] - 1.0 / msgs).abs() < 1e-9);        // RP once per txn
            prop_assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }

        /// Chains sampled from any paper pattern respect the protocol's
        /// dependency relation hop by hop.
        #[test]
        fn sampled_shapes_respect_partial_order(seed in 0u64..1000, which in 0usize..5) {
            let pats = PatternSpec::all_paper_patterns();
            let pat = &pats[which];
            let mut rng = StdRng::seed_from_u64(seed);
            let sid = pat.sample_shape(&mut rng);
            let shape = pat.shape(sid);
            let proto = pat.protocol();
            for w in shape.chain.windows(2) {
                prop_assert!(proto.may_generate(w[0], w[1]),
                    "{} -> {} not allowed by {}",
                    proto.spec(w[0]).name, proto.spec(w[1]).name, proto.name());
            }
            // Chains end terminally.
            prop_assert!(proto.is_terminating(*shape.chain.last().unwrap()));
        }
    }
}

#[test]
fn chain_enumeration_generic() {
    let p = ProtocolSpec::s1_generic();
    let mut chains = p.enumerate_chains();
    chains.sort();
    // RQ≺RP, RQ≺FRQ≺RP, RQ≺FRQ≺FRP≺RP.
    assert_eq!(
        chains,
        vec![
            vec![MsgType(0), MsgType(1), MsgType(2), MsgType(3)],
            vec![MsgType(0), MsgType(1), MsgType(3)],
            vec![MsgType(0), MsgType(3)],
        ]
    );
    // Every chain ends terminally.
    for c in &chains {
        assert!(p.is_terminating(*c.last().unwrap()));
    }
}

#[test]
fn chain_enumeration_origin() {
    let p = ProtocolSpec::origin2000();
    let chains = p.enumerate_chains();
    // Absent recovery: ORQ≺TRP and ORQ≺FRQ≺TRP only (BRP excluded).
    assert_eq!(chains.len(), 2);
    assert!(chains.iter().all(|c| c[0] == MsgType(0)));
    assert!(chains.iter().all(|c| !c.contains(&MsgType(1))));
}

/// The Section 2.1 formulas, including the worked example: "a total of
/// eight virtual channels are required ... and only one of these is
/// potentially available to each message. If sixteen virtual channels
/// were implemented, only three would be available".
#[test]
fn section_2_1_availability_formulas() {
    let p = ProtocolSpec::s1_generic(); // L = 4
    assert_eq!(p.min_escape_channels(2), 8);
    assert_eq!(p.sa_availability(8, 2), Some(1));
    assert_eq!(p.sa_availability(16, 2), Some(3));
    assert_eq!(p.sa_availability(4, 2), None, "below E_m");
    // "the upper limit ... is increased to 1 + (C − E_m)" [21].
    assert_eq!(p.sa_shared_availability(16, 2), Some(9));
    assert_eq!(p.sa_shared_availability(8, 2), Some(1));
}

#[test]
fn dot_export_well_formed() {
    for p in [
        ProtocolSpec::two_type(),
        ProtocolSpec::s1_generic(),
        ProtocolSpec::origin2000(),
    ] {
        let dot = p.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
        for t in p.msg_types() {
            assert!(dot.contains(p.spec(t).name), "{dot}");
        }
        // Edge count matches the dependency relation.
        let edges = dot.matches(" -> ").count();
        let expect: usize = p.msg_types().map(|t| p.subordinates(t).len()).sum();
        assert_eq!(edges, expect);
        // Terminating type rendered distinctly.
        assert!(dot.contains("doublecircle"));
    }
    assert!(ProtocolSpec::origin2000().to_dot().contains("diamond"), "backoff marked");
}
