//! Protocol analysis utilities: chain enumeration, resource-requirement
//! calculators (the paper's Section 2.1 arithmetic) and Graphviz export
//! for documentation.

use crate::spec::ProtocolSpec;
use crate::types::MsgType;
use std::fmt::Write as _;

impl ProtocolSpec {
    /// Enumerate every maximal dependency chain (path from a chain head to
    /// the terminating type), excluding the recovery-only backoff type —
    /// the "message dependency chains allowed by the communication
    /// protocol".
    pub fn enumerate_chains(&self) -> Vec<Vec<MsgType>> {
        let skip = self.backoff_type();
        // Heads: types with no predecessor among non-backoff types.
        let mut has_pred = vec![false; self.num_types()];
        for t in self.msg_types() {
            if Some(t) == skip {
                continue;
            }
            for &s in self.subordinates(t) {
                has_pred[s.index()] = true;
            }
        }
        let mut out = Vec::new();
        let mut path = Vec::new();
        for t in self.msg_types() {
            if Some(t) == skip || has_pred[t.index()] {
                continue;
            }
            self.dfs_chains(t, skip, &mut path, &mut out);
        }
        out
    }

    fn dfs_chains(
        &self,
        t: MsgType,
        skip: Option<MsgType>,
        path: &mut Vec<MsgType>,
        out: &mut Vec<Vec<MsgType>>,
    ) {
        path.push(t);
        let subs: Vec<MsgType> = self
            .subordinates(t)
            .iter()
            .copied()
            .filter(|&s| Some(s) != skip)
            .collect();
        if subs.is_empty() {
            out.push(path.clone());
        } else {
            for s in subs {
                self.dfs_chains(s, skip, path, out);
            }
        }
        path.pop();
    }

    /// `E_m`: the minimum escape channels needed to strictly avoid
    /// message-dependent deadlock, `L · E_r` (Section 2.1).
    pub fn min_escape_channels(&self, escape_per_network: usize) -> usize {
        self.num_partition_types() * escape_per_network
    }

    /// The paper's channel-availability formula for plain partitioned
    /// strict avoidance: `1 + (C/L − E_r)` when `C ≥ E_m`, else `None`.
    pub fn sa_availability(&self, channels: usize, escape_per_network: usize) -> Option<usize> {
        let l = self.num_partition_types();
        if channels < self.min_escape_channels(escape_per_network) {
            return None;
        }
        Some(1 + (channels / l - escape_per_network))
    }

    /// The improved availability with a shared adaptive pool (\[21\]):
    /// `1 + (C − E_m)`.
    pub fn sa_shared_availability(
        &self,
        channels: usize,
        escape_per_network: usize,
    ) -> Option<usize> {
        let em = self.min_escape_channels(escape_per_network);
        if channels < em {
            return None;
        }
        Some(1 + (channels - em))
    }

    /// Render the dependency relation as a Graphviz digraph (for
    /// documentation; `dot -Tpng`-ready).
    pub fn to_dot(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "digraph {} {{", self.name().replace('-', "_"));
        let _ = writeln!(s, "  rankdir=LR;");
        for t in self.msg_types() {
            let spec = self.spec(t);
            let shape = if spec.terminating {
                "doublecircle"
            } else if Some(t) == self.backoff_type() {
                "diamond"
            } else {
                "circle"
            };
            let _ = writeln!(
                s,
                "  {} [shape={shape}, label=\"{}\\n{:?}/{}f\"];",
                spec.name, spec.name, spec.kind, spec.length_flits
            );
        }
        for t in self.msg_types() {
            for &sub in self.subordinates(t) {
                let _ = writeln!(
                    s,
                    "  {} -> {};",
                    self.spec(t).name,
                    self.spec(sub).name
                );
            }
        }
        s.push_str("}\n");
        s
    }
}
