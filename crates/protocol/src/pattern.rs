//! The synthetic message-type distributions of Table 3.

use crate::shape::{HopTarget, TransactionShape};
use crate::spec::ProtocolSpec;
use crate::types::MsgType;
use rand::Rng;

/// Index of a transaction shape within a [`PatternSpec`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ShapeId(pub u16);

impl ShapeId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A data-transaction pattern: a protocol plus a probability distribution
/// over transaction shapes (dependency chains). The five patterns of
/// Table 3 are provided as constructors.
#[derive(Clone, Debug)]
pub struct PatternSpec {
    name: &'static str,
    protocol: ProtocolSpec,
    shapes: Vec<TransactionShape>,
    weights: Vec<f64>,
    cumulative: Vec<f64>,
}

impl PatternSpec {
    /// Build a pattern from weighted shapes; weights are normalized.
    pub fn new(
        name: &'static str,
        protocol: ProtocolSpec,
        weighted_shapes: Vec<(f64, TransactionShape)>,
    ) -> Self {
        assert!(!weighted_shapes.is_empty(), "pattern needs shapes");
        let total: f64 = weighted_shapes.iter().map(|(w, _)| *w).sum();
        assert!(total > 0.0, "pattern weights must be positive");
        let mut shapes = Vec::with_capacity(weighted_shapes.len());
        let mut weights = Vec::with_capacity(weighted_shapes.len());
        let mut cumulative = Vec::with_capacity(weighted_shapes.len());
        let mut acc = 0.0;
        for (w, s) in weighted_shapes {
            for &t in &s.chain {
                assert!(
                    t.index() < protocol.num_types(),
                    "shape references unknown message type"
                );
            }
            acc += w / total;
            shapes.push(s);
            weights.push(w / total);
            cumulative.push(acc);
        }
        *cumulative.last_mut().unwrap() = 1.0;
        PatternSpec {
            name,
            protocol,
            shapes,
            weights,
            cumulative,
        }
    }

    /// PAT100: chain length 2 always (pure request/reply). Representative
    /// of message-passing systems and of the first three Splash-2
    /// applications (chain length 2 for 95–99% of transactions).
    pub fn pat100() -> Self {
        let p = ProtocolSpec::two_type();
        PatternSpec::new(
            "PAT100",
            p,
            vec![(
                1.0,
                TransactionShape::new(
                    vec![MsgType(0), MsgType(1)],
                    vec![HopTarget::Home, HopTarget::Requester],
                ),
            )],
        )
    }

    /// PAT721: 70% chain-2, 20% chain-3, 10% chain-4 on the generic
    /// protocol.
    pub fn pat721() -> Self {
        Self::generic_mix("PAT721", 0.7, 0.2, 0.1)
    }

    /// PAT451: 40% chain-2, 50% chain-3, 10% chain-4.
    pub fn pat451() -> Self {
        Self::generic_mix("PAT451", 0.4, 0.5, 0.1)
    }

    /// PAT271: 20% chain-2, 70% chain-3, 10% chain-4. Closest to the
    /// Water benchmark's behaviour.
    pub fn pat271() -> Self {
        Self::generic_mix("PAT271", 0.2, 0.7, 0.1)
    }

    /// PAT280: Origin2000-like — 20% chain-2 (`ORQ→TRP`) and 80% chain-3
    /// (`ORQ→FRQ→TRP`); chain length 4 occurs only via backoff recovery.
    pub fn pat280() -> Self {
        let p = ProtocolSpec::origin2000();
        let (orq, frq, trp) = (MsgType(0), MsgType(2), MsgType(3));
        PatternSpec::new(
            "PAT280",
            p,
            vec![
                (
                    0.2,
                    TransactionShape::new(
                        vec![orq, trp],
                        vec![HopTarget::Home, HopTarget::Requester],
                    ),
                ),
                (
                    0.8,
                    TransactionShape::new(
                        vec![orq, frq, trp],
                        vec![HopTarget::Home, HopTarget::Owner, HopTarget::Requester],
                    ),
                ),
            ],
        )
    }

    /// The chain-length mixes of the PATx21 family on the S-1 generic
    /// protocol: chain-2 `RQ→RP`, chain-3 `RQ→FRQ→RP` (owner replies
    /// directly), chain-4 `RQ→FRQ→FRP→RP` (owner replies through home).
    /// This is the unique shape assignment consistent with Table 3's
    /// printed type distributions (see DESIGN.md §6).
    pub fn generic_mix(name: &'static str, p2: f64, p3: f64, p4: f64) -> Self {
        let p = ProtocolSpec::s1_generic();
        let (rq, frq, frp, rp) = (MsgType(0), MsgType(1), MsgType(2), MsgType(3));
        PatternSpec::new(
            name,
            p,
            vec![
                (
                    p2,
                    TransactionShape::new(
                        vec![rq, rp],
                        vec![HopTarget::Home, HopTarget::Requester],
                    ),
                ),
                (
                    p3,
                    TransactionShape::new(
                        vec![rq, frq, rp],
                        vec![HopTarget::Home, HopTarget::Owner, HopTarget::Requester],
                    ),
                ),
                (
                    p4,
                    TransactionShape::new(
                        vec![rq, frq, frp, rp],
                        vec![
                            HopTarget::Home,
                            HopTarget::Owner,
                            HopTarget::Home,
                            HopTarget::Requester,
                        ],
                    ),
                ),
            ],
        )
    }

    /// All five Table 3 patterns, in the paper's order.
    pub fn all_paper_patterns() -> Vec<PatternSpec> {
        vec![
            Self::pat100(),
            Self::pat721(),
            Self::pat451(),
            Self::pat271(),
            Self::pat280(),
        ]
    }

    /// Pattern name (e.g. `"PAT271"`).
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The underlying protocol.
    #[inline]
    pub fn protocol(&self) -> &ProtocolSpec {
        &self.protocol
    }

    /// Number of shapes.
    #[inline]
    pub fn num_shapes(&self) -> usize {
        self.shapes.len()
    }

    /// The shape with the given id.
    #[inline]
    pub fn shape(&self, id: ShapeId) -> &TransactionShape {
        &self.shapes[id.index()]
    }

    /// The normalized weight of shape `id`.
    #[inline]
    pub fn weight(&self, id: ShapeId) -> f64 {
        self.weights[id.index()]
    }

    /// Sample a shape according to the pattern's distribution.
    pub fn sample_shape<R: Rng + ?Sized>(&self, rng: &mut R) -> ShapeId {
        let x: f64 = rng.random();
        let idx = self
            .cumulative
            .iter()
            .position(|&c| x < c)
            .unwrap_or(self.shapes.len() - 1);
        ShapeId(idx as u16)
    }

    /// Expected messages per transaction (the denominator of the Table 3
    /// type-frequency arithmetic).
    pub fn avg_messages_per_txn(&self) -> f64 {
        self.shapes
            .iter()
            .zip(&self.weights)
            .map(|(s, w)| w * s.len() as f64)
            .sum()
    }

    /// Expected chain length, weighted by shape probability.
    pub fn avg_chain_length(&self) -> f64 {
        self.avg_messages_per_txn()
    }

    /// Expected fraction of network messages of each type — the "Message
    /// Type Distribution" columns of Table 3.
    pub fn type_distribution(&self) -> Vec<f64> {
        let mut per_type = vec![0.0; self.protocol.num_types()];
        for (s, w) in self.shapes.iter().zip(&self.weights) {
            for &t in &s.chain {
                per_type[t.index()] += w;
            }
        }
        let total: f64 = per_type.iter().sum();
        for v in &mut per_type {
            *v /= total;
        }
        per_type
    }

    /// Expected fraction of *flits* injected per message type, used to
    /// convert an applied flit load into a request injection rate.
    pub fn flits_per_txn(&self) -> f64 {
        self.shapes
            .iter()
            .zip(&self.weights)
            .map(|(s, w)| {
                w * s
                    .chain
                    .iter()
                    .map(|&t| self.protocol.length(t) as f64)
                    .sum::<f64>()
            })
            .sum()
    }
}
