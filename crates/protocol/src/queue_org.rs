//! Endpoint message-queue organization.
//!
//! The paper's three schemes differ in how network-interface input/output
//! message queues are organized (Section 4.3, Figure 11):
//!
//! * strict avoidance requires one queue pair per message type,
//! * deflective recovery uses one pair per logical network (request/reply),
//! * progressive recovery shares one pair among all types by default —
//!   maximizing utilization but introducing inter-message *coupling* — and
//!   may optionally adopt the per-type organization (the figure's "QA"
//!   configuration) purely for performance.

use crate::spec::ProtocolSpec;
use crate::types::MsgType;

/// How a NIC's message queues are split by message type.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueueOrg {
    /// One shared input queue and one shared output queue (PR default).
    Shared,
    /// One queue pair per logical network: request and reply (DR default).
    PerNetwork,
    /// One queue pair per message type (SA requirement; the "QA"
    /// configuration when applied to DR/PR). The backoff type shares the
    /// terminating reply's queue.
    PerType,
}

impl QueueOrg {
    /// Number of queue pairs under this organization for `protocol`.
    pub fn queue_count(self, protocol: &ProtocolSpec) -> usize {
        match self {
            QueueOrg::Shared => 1,
            QueueOrg::PerNetwork => 2,
            QueueOrg::PerType => protocol.num_partition_types(),
        }
    }

    /// The queue index messages of type `t` use.
    pub fn queue_index(self, protocol: &ProtocolSpec, t: MsgType) -> usize {
        match self {
            QueueOrg::Shared => 0,
            QueueOrg::PerNetwork => protocol.dr_network(t),
            QueueOrg::PerType => protocol.sa_partition(t),
        }
    }
}
