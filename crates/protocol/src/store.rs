//! Single-owner storage for live messages.
//!
//! Every [`Message`] in a simulation is owned by exactly one
//! [`MessageStore`] slab from generation until consumption (or until a
//! memory controller takes it over for service). Everything else — NIC
//! queues, in-flight packet state, recovery records — holds a
//! [`MsgHandle`]: a dense slot index resolved by `Vec` indexing, never by
//! hashing and never by cloning the message.
//!
//! Slots are recycled through a free list. Under `debug_assertions` each
//! handle additionally carries the slot's generation tag, so resolving a
//! stale handle (one whose message was already removed and whose slot was
//! reused) fails loudly in debug builds; release builds pay nothing for
//! the tag and a stale handle can never alias a *dead* slot silently —
//! [`MessageStore::try_get`] reports vacancy, and the panicking accessors
//! are bounds-checked.

use crate::message::Message;

/// A copy-free reference to a live message owned by a [`MessageStore`].
///
/// Four bytes in release builds (the slot index); debug builds add the
/// slot generation for stale-handle detection.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MsgHandle {
    slot: u32,
    #[cfg(debug_assertions)]
    gen: u32,
}

impl MsgHandle {
    /// The dense slot index (stable for the message's whole lifetime).
    #[inline]
    pub fn slot(&self) -> u32 {
        self.slot
    }

    /// A placeholder handle for structure-of-arrays slots whose validity is
    /// tracked by an external occupancy mask. It resolves to nothing (the
    /// store never hands out slot `u32::MAX`) and must never be dereferenced;
    /// it only exists so flat `Vec<MsgHandle>` state can be densely
    /// initialized without the per-element overhead of `Option`.
    ///
    /// ```
    /// use mdd_protocol::MsgHandle;
    /// let h = MsgHandle::dangling();
    /// assert_eq!(h.slot(), u32::MAX);
    /// ```
    #[inline]
    pub const fn dangling() -> Self {
        MsgHandle {
            slot: u32::MAX,
            #[cfg(debug_assertions)]
            gen: u32::MAX,
        }
    }
}

#[derive(Clone, Debug)]
struct Slot {
    msg: Option<Message>,
    /// Bumped on every removal, so recycled slots invalidate old handles
    /// (checked under `debug_assertions`).
    gen: u32,
}

/// Slab of live messages with free-list slot reuse.
#[derive(Clone, Debug, Default)]
pub struct MessageStore {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
}

impl MessageStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store with room for `cap` messages before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        MessageStore {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Take ownership of `msg`, returning its handle.
    pub fn insert(&mut self, msg: Message) -> MsgHandle {
        self.live += 1;
        match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                debug_assert!(s.msg.is_none(), "free-list slot still occupied");
                s.msg = Some(msg);
                MsgHandle {
                    slot,
                    #[cfg(debug_assertions)]
                    gen: s.gen,
                }
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Slot { msg: Some(msg), gen: 0 });
                MsgHandle {
                    slot,
                    #[cfg(debug_assertions)]
                    gen: 0,
                }
            }
        }
    }

    #[cfg(debug_assertions)]
    #[inline]
    fn check_gen(&self, h: MsgHandle) {
        debug_assert_eq!(
            self.slots[h.slot as usize].gen, h.gen,
            "stale MsgHandle: slot {} was recycled",
            h.slot
        );
    }

    #[cfg(not(debug_assertions))]
    #[inline]
    fn check_gen(&self, _h: MsgHandle) {}

    /// Resolve `h`. Panics on a vacant slot; debug builds also reject
    /// stale handles via the generation tag.
    #[inline]
    pub fn get(&self, h: MsgHandle) -> &Message {
        self.check_gen(h);
        self.slots[h.slot as usize]
            .msg
            .as_ref()
            .expect("MsgHandle resolves to a vacant slot")
    }

    /// Mutably resolve `h` (same checks as [`MessageStore::get`]).
    #[inline]
    pub fn get_mut(&mut self, h: MsgHandle) -> &mut Message {
        self.check_gen(h);
        self.slots[h.slot as usize]
            .msg
            .as_mut()
            .expect("MsgHandle resolves to a vacant slot")
    }

    /// Resolve `h` without panicking on vacancy (stale handles still
    /// fail the debug generation check — a `None` here means the slot is
    /// genuinely empty, not reused).
    #[inline]
    pub fn try_get(&self, h: MsgHandle) -> Option<&Message> {
        self.check_gen(h);
        self.slots.get(h.slot as usize).and_then(|s| s.msg.as_ref())
    }

    /// Remove and return the message, retiring the slot to the free list
    /// and invalidating all outstanding copies of `h`.
    pub fn remove(&mut self, h: MsgHandle) -> Message {
        self.check_gen(h);
        let s = &mut self.slots[h.slot as usize];
        let msg = s.msg.take().expect("removing from a vacant slot");
        s.gen = s.gen.wrapping_add(1);
        self.free.push(h.slot);
        self.live -= 1;
        msg
    }

    /// Live messages currently owned by the store.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when the store owns no messages.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (live + recyclable).
    #[inline]
    pub fn capacity_slots(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MessageId, TransactionId};
    use crate::pattern::ShapeId;
    use crate::types::MsgType;
    use mdd_topology::NicId;
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn msg(id: u64) -> Message {
        Message {
            id: MessageId(id),
            txn: TransactionId(id),
            mtype: MsgType(0),
            shape: ShapeId(0),
            chain_pos: 0,
            src: NicId(0),
            dst: NicId(1),
            requester: NicId(0),
            home: NicId(1),
            owner: NicId(1),
            length_flits: 4,
            created: 0,
            is_backoff: false,
            rescued: false,
            sharers: 0,
        }
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut store = MessageStore::new();
        let a = store.insert(msg(1));
        let b = store.insert(msg(2));
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(a).id, MessageId(1));
        assert_eq!(store.get(b).id, MessageId(2));
        let out = store.remove(a);
        assert_eq!(out.id, MessageId(1));
        assert_eq!(store.len(), 1);
        // Slot reuse: the freed slot is recycled for the next insert.
        let c = store.insert(msg(3));
        assert_eq!(c.slot(), a.slot());
        assert_eq!(store.get(c).id, MessageId(3));
        assert_eq!(store.get(b).id, MessageId(2));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale MsgHandle")]
    fn stale_handle_is_rejected_after_reuse() {
        let mut store = MessageStore::new();
        let a = store.insert(msg(1));
        store.remove(a);
        let _b = store.insert(msg(2)); // reuses a's slot with a new generation
        let _ = store.get(a);
    }

    proptest! {
        /// Random insert/remove interleavings: every live handle keeps
        /// resolving to exactly the message it was created for (slot
        /// reuse never aliases two live messages onto one slot), and the
        /// live count tracks the shadow model exactly.
        #[test]
        fn slot_reuse_never_aliases_live_messages(
            ops in proptest::collection::vec((0u8..4, 0usize..16), 1..200)
        ) {
            let mut store = MessageStore::new();
            // Shadow model: handle -> the message id it must resolve to.
            let mut live: Vec<(MsgHandle, u64)> = Vec::new();
            let mut next_id = 0u64;
            for (op, pick) in ops {
                if op == 0 && !live.is_empty() {
                    // Remove a pseudo-randomly chosen live message.
                    let (h, want) = live.swap_remove(pick % live.len());
                    let got = store.remove(h);
                    prop_assert_eq!(got.id.0, want);
                } else {
                    next_id += 1;
                    let h = store.insert(msg(next_id));
                    // The new handle's slot must not collide with any
                    // live handle's slot.
                    for (other, _) in &live {
                        prop_assert_ne!(other.slot(), h.slot());
                    }
                    live.push((h, next_id));
                }
                prop_assert_eq!(store.len(), live.len());
                prop_assert_eq!(store.is_empty(), live.is_empty());
                // Every live handle still resolves to its own message.
                for (h, want) in &live {
                    prop_assert_eq!(store.get(*h).id.0, *want);
                    prop_assert_eq!(store.try_get(*h).map(|m| m.id.0), Some(*want));
                }
            }
            // Slots are recycled: total slots never exceed peak liveness
            // plus the messages still live (free list keeps it dense).
            let mut dense = HashMap::new();
            for (h, id) in &live {
                prop_assert_eq!(dense.insert(h.slot(), *id), None);
            }
        }
    }
}
