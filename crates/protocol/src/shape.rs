//! Transaction shapes: the concrete per-transaction message chains used by
//! the synthetic workloads.

use crate::types::MsgType;

/// Where one message of a chain is delivered. Every transaction involves a
/// *requester*, a *home* node (the directory for the block) and possibly an
/// *owner* (a third node holding the block or a sharer to invalidate).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HopTarget {
    /// The home node of the address (chosen uniformly at random per
    /// transaction under the paper's random traffic, excluding the
    /// requester).
    Home,
    /// The owner/sharer node (a third node, distinct from requester and
    /// home where the network has three or more endpoints).
    Owner,
    /// Back to the original requester.
    Requester,
}

/// One linear message dependency chain, e.g. `RQ → FRQ → RP`
/// (requester→home, home→owner, owner→requester).
///
/// The synthetic patterns of Table 3 assume a single sharer per block, so
/// their shapes are linear; multicast invalidation fan-out (and the join at
/// the home node) is modelled by the `mdd-coherence` engine for the
/// trace-driven experiments.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TransactionShape {
    /// The message type of each hop, in chain order.
    pub chain: Vec<MsgType>,
    /// The delivery target of each hop. `targets[0]` is where the original
    /// request goes (always `Home` for the provided shapes).
    pub targets: Vec<HopTarget>,
    /// If `Some(pos)`, the message at chain position `pos` is multicast to
    /// every sharer in the transaction's sharer set (e.g. parallel
    /// invalidations), and the following position is the per-branch join
    /// reply collected at its target before the chain continues. `None`
    /// for linear chains.
    pub multicast_at: Option<usize>,
}

impl TransactionShape {
    /// Construct a shape; panics unless `chain` and `targets` have equal,
    /// nonzero length.
    pub fn new(chain: Vec<MsgType>, targets: Vec<HopTarget>) -> Self {
        assert!(!chain.is_empty(), "a shape needs at least one message");
        assert_eq!(
            chain.len(),
            targets.len(),
            "each chain hop needs a delivery target"
        );
        TransactionShape {
            chain,
            targets,
            multicast_at: None,
        }
    }

    /// Mark position `pos` as a multicast hop (builder style): the
    /// message there is replicated per sharer and the next position is
    /// its per-branch join reply. `pos` must have a successor (the join
    /// reply) which itself must have a successor or be terminating.
    pub fn with_multicast(mut self, pos: usize) -> Self {
        assert!(pos >= 1, "the original request cannot be multicast");
        assert!(
            pos + 1 < self.chain.len(),
            "a multicast hop needs a join-reply successor"
        );
        self.multicast_at = Some(pos);
        self
    }

    /// True if `pos` is the multicast hop.
    pub fn is_multicast(&self, pos: usize) -> bool {
        self.multicast_at == Some(pos)
    }

    /// True if `pos` is the join-reply hop (each branch's reply, collected
    /// at the join target before the chain continues).
    pub fn is_join_reply(&self, pos: usize) -> bool {
        self.multicast_at.is_some_and(|m| m + 1 == pos)
    }

    /// Chain length (number of message types in this transaction).
    #[inline]
    pub fn len(&self) -> usize {
        self.chain.len()
    }

    /// True if the shape is empty (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.chain.is_empty()
    }

    /// The message type at chain position `pos`.
    #[inline]
    pub fn mtype(&self, pos: usize) -> MsgType {
        self.chain[pos]
    }

    /// The delivery target at chain position `pos`.
    #[inline]
    pub fn target(&self, pos: usize) -> HopTarget {
        self.targets[pos]
    }

    /// True if `pos` is the final hop of the chain.
    #[inline]
    pub fn is_last(&self, pos: usize) -> bool {
        pos + 1 == self.chain.len()
    }

    /// Whether any hop is delivered to a third-party owner (such shapes
    /// need an owner node chosen at transaction creation).
    pub fn uses_owner(&self) -> bool {
        self.targets.contains(&HopTarget::Owner)
    }
}
