//! Protocol descriptions: the set of message types and the `≺` dependency
//! partial order between them.

use crate::types::{MsgKind, MsgType, MsgTypeSpec};

/// A communication protocol: message types plus the direct dependency
/// relation `mi ≺ mj` ("a node receiving `mi` may generate `mj`").
///
/// The relation must be acyclic and every maximal chain must end in a
/// terminating type; [`ProtocolSpec::validate`] checks this (it is enforced
/// by the provided constructors).
///
/// ```
/// use mdd_protocol::{ProtocolSpec, MsgType};
/// let p = ProtocolSpec::s1_generic();
/// assert_eq!(p.chain_length(), 4);
/// assert!(p.may_generate(MsgType(0), MsgType(1))); // RQ ≺ FRQ
/// assert!(p.is_terminating(p.terminating_type()));
/// assert_eq!(p.enumerate_chains().len(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct ProtocolSpec {
    name: &'static str,
    types: Vec<MsgTypeSpec>,
    /// `subordinates[i]` lists the types directly generable from type `i`.
    subordinates: Vec<Vec<MsgType>>,
    /// The backoff-reply type used by deflective recovery, if the protocol
    /// defines one (Origin2000's `BRP`; the generic protocol's `BKF`).
    backoff: Option<MsgType>,
}

impl ProtocolSpec {
    /// Build a protocol from parts. Panics if the description is invalid
    /// (see [`ProtocolSpec::validate`]).
    pub fn new(
        name: &'static str,
        types: Vec<MsgTypeSpec>,
        deps: &[(usize, usize)],
        backoff: Option<MsgType>,
    ) -> Self {
        let mut subordinates = vec![Vec::new(); types.len()];
        for &(a, b) in deps {
            subordinates[a].push(MsgType(b as u8));
        }
        let spec = ProtocolSpec {
            name,
            types,
            subordinates,
            backoff,
        };
        spec.validate().expect("invalid protocol description");
        spec
    }

    /// A plain two-type request/reply protocol — message-passing style, or
    /// a shared-memory protocol in which every block is home-owned. This is
    /// the protocol behind pattern PAT100.
    pub fn two_type() -> Self {
        ProtocolSpec::new(
            "REQ-RP",
            vec![
                MsgTypeSpec::request("REQ"),
                MsgTypeSpec::reply("RP").terminating(),
            ],
            &[(0, 1)],
            None,
        )
    }

    /// The generic four-type protocol of Figure 7 with the S-1 /
    /// Censier-Feautrier mapping: `RQ ≺ FRQ ≺ FRP ≺ RP`, where `RQ` and
    /// `FRQ` are short requests and `FRP`/`RP` are long data replies. A
    /// fifth short backoff-reply type `BKF` exists solely for deflective
    /// recovery (`BKF ≺ FRQ`): it converts home-side forwarding into
    /// requester-side forwarding, mirroring the Origin2000 backoff
    /// mechanism on the generic chain.
    pub fn s1_generic() -> Self {
        ProtocolSpec::new(
            "S1-generic",
            vec![
                MsgTypeSpec::request("RQ"),
                MsgTypeSpec::request("FRQ"),
                MsgTypeSpec::reply("FRP"),
                MsgTypeSpec::reply("RP").terminating(),
                // Backoff reply: short control reply carrying owner info.
                MsgTypeSpec {
                    name: "BKF",
                    kind: MsgKind::Reply,
                    terminating: false,
                    length_flits: 4,
                },
            ],
            &[
                (0, 1), // RQ  ≺ FRQ
                (0, 3), // RQ  ≺ RP   (direct reply, chain length 2)
                (1, 2), // FRQ ≺ FRP
                (1, 3), // FRQ ≺ RP   (owner replies directly, chain length 3)
                (2, 3), // FRP ≺ RP
                (4, 1), // BKF ≺ FRQ  (deflective recovery only)
            ],
            Some(MsgType(4)),
        )
    }

    /// The MSI directory protocol used for the trace-driven
    /// characterization (Figure 5). Structurally identical to the S-1
    /// generic protocol; the coherence engine distinguishes the lowercase
    /// sub-types (read/write requests, invalidations vs forwards) which, as
    /// the paper notes (footnote 2), create the same dependency classes.
    pub fn msi() -> Self {
        let mut p = Self::s1_generic();
        p.name = "MSI";
        p
    }

    /// The Origin2000 protocol of Figure 2: `ORQ ≺ FRQ ≺ TRP` in the
    /// absence of deadlock, with the backoff reply `BRP` inserted
    /// (`ORQ ≺ BRP ≺ FRQ ≺ TRP`) only during deflective recovery.
    pub fn origin2000() -> Self {
        ProtocolSpec::new(
            "Origin2000",
            vec![
                MsgTypeSpec::request("ORQ"),
                MsgTypeSpec {
                    name: "BRP",
                    kind: MsgKind::Reply,
                    terminating: false,
                    length_flits: 4,
                },
                MsgTypeSpec::request("FRQ"),
                MsgTypeSpec::reply("TRP").terminating(),
            ],
            &[
                (0, 3), // ORQ ≺ TRP (direct reply, chain length 2)
                (0, 2), // ORQ ≺ FRQ (forwarding, chain length 3)
                (1, 2), // BRP ≺ FRQ (recovery)
                (2, 3), // FRQ ≺ TRP
            ],
            Some(MsgType(1)),
        )
    }

    /// Protocol name.
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of message types (including any recovery-only backoff type).
    #[inline]
    pub fn num_types(&self) -> usize {
        self.types.len()
    }

    /// Number of message types participating in deadlock-free-routing
    /// resource partitioning. The backoff type shares the reply network of
    /// the terminating type (as in the Origin2000) and therefore does not
    /// count toward the strict-avoidance partition.
    pub fn num_partition_types(&self) -> usize {
        match self.backoff {
            Some(_) => self.types.len() - 1,
            None => self.types.len(),
        }
    }

    /// Static attributes of `t`.
    #[inline]
    pub fn spec(&self, t: MsgType) -> &MsgTypeSpec {
        &self.types[t.index()]
    }

    /// Message length of `t` in flits.
    #[inline]
    pub fn length(&self, t: MsgType) -> u32 {
        self.types[t.index()].length_flits
    }

    /// Request/reply classification of `t`.
    #[inline]
    pub fn kind(&self, t: MsgType) -> MsgKind {
        self.types[t.index()].kind
    }

    /// True if `t` is a terminating type.
    #[inline]
    pub fn is_terminating(&self, t: MsgType) -> bool {
        self.types[t.index()].terminating
    }

    /// The types directly generable from `t` (direct `≺` successors).
    #[inline]
    pub fn subordinates(&self, t: MsgType) -> &[MsgType] {
        &self.subordinates[t.index()]
    }

    /// True if `a ≺ b` directly.
    pub fn may_generate(&self, a: MsgType, b: MsgType) -> bool {
        self.subordinates[a.index()].contains(&b)
    }

    /// The backoff-reply type used by deflective recovery, if defined.
    #[inline]
    pub fn backoff_type(&self) -> Option<MsgType> {
        self.backoff
    }

    /// Iterate over all message types.
    pub fn msg_types(&self) -> impl Iterator<Item = MsgType> {
        (0..self.types.len() as u8).map(MsgType)
    }

    /// All types subordinate to `t` (transitive closure of `≺`).
    pub fn subordinate_closure(&self, t: MsgType) -> Vec<MsgType> {
        let mut seen = vec![false; self.types.len()];
        let mut stack = vec![t];
        let mut out = Vec::new();
        while let Some(cur) = stack.pop() {
            for &s in &self.subordinates[cur.index()] {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    out.push(s);
                    stack.push(s);
                }
            }
        }
        out.sort();
        out
    }

    /// The message dependency chain length `L`: the number of types on the
    /// longest `≺` chain (e.g. 2 for request/reply, 4 for the generic
    /// protocol). The backoff type is excluded, matching the paper ("the
    /// maximum chain length is three" for the Origin2000 absent deadlock).
    pub fn chain_length(&self) -> usize {
        let n = self.types.len();
        // Longest path in the DAG via memoized DFS, skipping the backoff
        // type as a chain head or member.
        let mut memo = vec![0usize; n];
        let mut done = vec![false; n];
        fn longest(
            spec: &ProtocolSpec,
            t: usize,
            memo: &mut [usize],
            done: &mut [bool],
            skip: Option<usize>,
        ) -> usize {
            if done[t] {
                return memo[t];
            }
            let mut best = 0;
            for &s in &spec.subordinates[t] {
                if Some(s.index()) == skip {
                    continue;
                }
                best = best.max(longest(spec, s.index(), memo, done, skip));
            }
            memo[t] = best + 1;
            done[t] = true;
            memo[t]
        }
        let skip = self.backoff.map(MsgType::index);
        (0..n)
            .filter(|&t| Some(t) != skip)
            .map(|t| longest(self, t, &mut memo, &mut done, skip))
            .max()
            .unwrap_or(0)
    }

    /// The logical-network index of `t` under strict avoidance: one
    /// partition per message type, with the backoff type sharing the
    /// partition of the terminating reply type (Origin2000 behaviour:
    /// "BRP messages use the same reply network as TRP messages").
    pub fn sa_partition(&self, t: MsgType) -> usize {
        if Some(t) == self.backoff {
            // Share the terminating reply's partition.
            return self.sa_partition(self.terminating_type());
        }
        let idx = t.index();
        match self.backoff {
            Some(b) if idx > b.index() => idx - 1,
            _ => idx,
        }
    }

    /// The logical-network index of `t` under deflective recovery:
    /// network 0 = request network, network 1 = reply network.
    pub fn dr_network(&self, t: MsgType) -> usize {
        match self.kind(t) {
            MsgKind::Request => 0,
            MsgKind::Reply => 1,
        }
    }

    /// The (unique, by construction) terminating message type.
    pub fn terminating_type(&self) -> MsgType {
        self.msg_types()
            .find(|&t| self.is_terminating(t))
            .expect("validated protocols have a terminating type")
    }

    /// Check structural invariants; returns a description of the first
    /// violation found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.types.len();
        if n == 0 {
            return Err("protocol has no message types".into());
        }
        if self.types.iter().filter(|t| t.terminating).count() != 1 {
            return Err("protocol must have exactly one terminating type".into());
        }
        for (i, subs) in self.subordinates.iter().enumerate() {
            let t = MsgType(i as u8);
            if self.is_terminating(t) && !subs.is_empty() {
                return Err(format!(
                    "terminating type {} must not generate subordinates",
                    self.types[i].name
                ));
            }
            if !self.is_terminating(t) && subs.is_empty() {
                return Err(format!(
                    "non-terminating type {} has no subordinates; its chains never end",
                    self.types[i].name
                ));
            }
            for &s in subs {
                if s.index() >= n {
                    return Err("dependency references unknown type".into());
                }
            }
        }
        // Acyclicity by DFS coloring.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        fn dfs(spec: &ProtocolSpec, t: usize, color: &mut [Color]) -> bool {
            color[t] = Color::Gray;
            for &s in &spec.subordinates[t] {
                match color[s.index()] {
                    Color::Gray => return false,
                    Color::White => {
                        if !dfs(spec, s.index(), color) {
                            return false;
                        }
                    }
                    Color::Black => {}
                }
            }
            color[t] = Color::Black;
            true
        }
        let mut color = vec![Color::White; n];
        for t in 0..n {
            if color[t] == Color::White && !dfs(self, t, &mut color) {
                return Err("dependency relation is cyclic".into());
            }
        }
        if let Some(b) = self.backoff {
            if self.kind(b) != MsgKind::Reply {
                return Err("backoff type must be a reply".into());
            }
            if self.is_terminating(b) {
                return Err("backoff type must be non-terminating (it generates the deflected request)".into());
            }
        }
        Ok(())
    }
}
