//! # mdd-protocol
//!
//! Communication-protocol substrate: message types and kinds, message
//! dependency chains (the paper's `≺` partial order), concrete protocol
//! descriptions (the S-1/MSI-style generic four-type protocol of Figure 7,
//! the Origin2000 protocol of Figure 2, and a plain two-type
//! request/reply protocol), transaction shapes, and the five synthetic
//! message-type distributions of Table 3 (PAT100 .. PAT280).
//!
//! A *message dependency chain* is a totally ordered list of message types
//! `m1 ≺ m2 ≺ ... ≺ mL` where `mi ≺ mj` means a node receiving `mi` may
//! generate `mj`. The final type is *terminating*: it is always consumed on
//! arrival (sunk against a preallocated MSHR at the requester). Everything
//! downstream — logical-network partitioning for strict avoidance, the
//! request/reply split for deflective recovery, and the rescue recursion of
//! progressive recovery — is driven by the structures defined here.

#![warn(missing_docs)]

mod analysis;
mod message;
mod pattern;
mod queue_org;
mod shape;
mod spec;
mod store;
mod types;

pub use message::{IdAlloc, Message, MessageId, TransactionId};
pub use store::{MessageStore, MsgHandle};
pub use queue_org::QueueOrg;
pub use pattern::{PatternSpec, ShapeId};
pub use shape::{HopTarget, TransactionShape};
pub use spec::ProtocolSpec;
pub use types::{MsgKind, MsgType, MsgTypeSpec};

#[cfg(test)]
mod tests;
