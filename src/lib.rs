//! # mdd-sim
//!
//! A cycle-accurate flit-level network simulator and a complete
//! implementation of the three families of *message-dependent deadlock*
//! handling techniques evaluated in:
//!
//! > Yong Ho Song and Timothy Mark Pinkston, *Efficient Handling of
//! > Message-Dependent Deadlock in Multiprocessor/Multicomputer Systems*,
//! > USC CENG TR 01-01 / IPPS 2001.
//!
//! The workspace provides, as independent crates re-exported here:
//!
//! * [`topology`] — k-ary n-cube tori/meshes, bristling, minimal-routing
//!   geometry, the recovery ring;
//! * [`protocol`] — message types, dependency chains (`m1 ≺ m2 ≺ …`),
//!   protocol descriptions (generic/S-1, MSI, Origin2000) and the Table 3
//!   transaction patterns;
//! * [`router`] — the wormhole network substrate: virtual channels,
//!   credits, the canonical allocation pipeline, packet extraction;
//! * [`routing`] — dimension-order, Duato and true-fully-adaptive routing
//!   with per-scheme virtual-channel maps (SA / SA+ / DR / PR);
//! * [`nic`] — endpoint model: message queues, memory controller, MSHRs,
//!   the potential-deadlock detector, deflective backoff, rescue hooks;
//! * [`deadlock`] — the circulating token, the exclusive recovery lane,
//!   and wait-for-graph knot detection;
//! * [`traffic`] — synthetic open-loop generators and Splash-2
//!   application models;
//! * [`coherence`] — a full-map directory MSI engine for the trace-driven
//!   characterization;
//! * [`core`] — the assembled simulator, scheme orchestration (including
//!   Extended Disha Sequential progressive recovery) and the load-sweep
//!   harness;
//! * [`engine`] — the batch experiment engine: parallel job scheduling
//!   with per-point panic isolation, a content-addressed persistent
//!   result cache, and progress counters;
//! * [`verify`] — the static deadlock-safety verifier: classifies any
//!   configuration as `ProvenFree`, `RecoverableCycles` or `Unsafe` from
//!   its dependency graph alone, with human-readable cycle witnesses.
//!
//! ## Quickstart
//!
//! ```
//! use mdd_sim::prelude::*;
//!
//! // An 8x8 torus with 4 virtual channels, PAT271 traffic, progressive
//! // recovery, at 10% applied load (all other parameters per Table 2).
//! let mut cfg = SimConfig::paper_default(
//!     Scheme::ProgressiveRecovery,
//!     PatternSpec::pat271(),
//!     4,
//!     0.10,
//! );
//! cfg.warmup = 500;
//! cfg.measure = 1_500; // keep the doctest fast
//! let result = Simulator::new(cfg).unwrap().run();
//! assert!(result.throughput > 0.0);
//! ```

#![warn(missing_docs)]

pub use mdd_coherence as coherence;
pub use mdd_core as simcore;
pub use mdd_deadlock as deadlock;
pub use mdd_engine as engine;
pub use mdd_nic as nic;
pub use mdd_obs as obs;
pub use mdd_protocol as protocol;
pub use mdd_router as router;
pub use mdd_routing as routing;
pub use mdd_stats as stats;
pub use mdd_topology as topology;
pub use mdd_traffic as traffic;
pub use mdd_verify as verify;

/// The most commonly needed types in one import.
pub mod prelude {
    pub use mdd_coherence::{CoherenceEngine, CoherentTraffic, TxnClass};
    pub use mdd_core::{
        build_waitfor_graph, deadlock_witness, default_loads, run_curve_checked, run_point,
        verify_config, verify_config_degraded, BnfCurve, BnfPoint,
        ConfigError, CycleWitness, PatternSpec, ProtocolSpec, QueueOrg, Scheme,
        SchemeConfigError, SimConfig, SimConfigBuilder, SimResult, Simulator, Verdict,
    };
    pub use mdd_engine::{Engine, Job, PointError, PointFailure, SweepReport};
    pub use mdd_obs::{CounterId, Event as ObsEvent, ObsReport};
    pub use mdd_protocol::{
        HopTarget, IdAlloc, Message, MessageId, MessageStore, MsgHandle, MsgKind, MsgType,
        TransactionShape,
    };
    pub use mdd_stats::{Histogram, OnlineStats, Table};
    pub use mdd_topology::{NicId, NodeId, Topology, TopologyKind};
    pub use mdd_traffic::{AppModel, DestPattern, SyntheticTraffic, TrafficSource};
}
